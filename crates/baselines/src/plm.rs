//! PLM-based baselines (PICARD / RASAT / RESDSQL / Graphix-T5 analogs).
//!
//! These systems fine-tune a seq2seq PLM end-to-end, which (per §IV-B) makes them
//! strong at operator composition but comparatively weak at intent/value fidelity —
//! the inverse signature of the LLM rows in Table 4 (high EM, moderate EX, low TS).
//!
//! Mechanics: the system decodes a skeleton beam from the trained predictor; the
//! composition is correct when the gold skeleton is recovered (top-1, or anywhere
//! in the beam for constrained re-ranking à la PICARD). Because the paper's T5-3B
//! is stronger than our naive-Bayes stand-in, each preset carries a calibrated
//! `fidelity` bonus — the probability that the real model would have decoded the
//! right composition even where our stand-in misses (documented in DESIGN.md §5).
//! Slot filling then introduces linking/value errors at PLM-typical rates.

use eval::{Job, RunEnv, RunOutcome, Translation, Translator};
use llm::writer::write_sample;
use llm::{count_tokens, LlmProfile, CHATGPT};
use nlmodel::SkeletonPredictor;
use obs::{Counter, EventValue, MetricsRegistry, Stage};
use rand::prelude::*;
use rand::rngs::StdRng;
use sqlkit::Skeleton;
use std::sync::Arc;

/// Preset parameters for one published PLM system.
#[derive(Debug, Clone, Copy)]
pub struct PlmConfig {
    /// Display name.
    pub name: &'static str,
    /// Beam width.
    pub beam: usize,
    /// Whether the beam is re-ranked by executability (PICARD's constrained
    /// decoding / RESDSQL's ranking stage).
    pub constrained: bool,
    /// Calibrated probability of recovering the composition when the stand-in
    /// predictor misses (fine-tuning fidelity gap).
    pub fidelity: f64,
    /// Schema-linking slip rate.
    pub linking_error: f64,
    /// Wrong-constant rate (drives the large EX−TS gap of Table 4's PLM rows).
    pub value_error: f64,
}

/// PICARD (Scholak et al. 2021): constrained auto-regressive decoding.
pub const PICARD: PlmConfig = PlmConfig {
    name: "PICARD",
    beam: 1,
    constrained: true,
    fidelity: 0.32,
    linking_error: 0.065,
    value_error: 0.115,
};

/// RASAT (Qi et al. 2022): relation-aware self-attention.
pub const RASAT: PlmConfig = PlmConfig {
    name: "RASAT",
    beam: 1,
    constrained: false,
    fidelity: 0.30,
    linking_error: 0.055,
    value_error: 0.110,
};

/// RESDSQL (Li et al. 2023): decoupled schema linking + skeleton parsing.
pub const RESDSQL: PlmConfig = PlmConfig {
    name: "RESDSQL",
    beam: 1,
    constrained: true,
    fidelity: 0.50,
    linking_error: 0.040,
    value_error: 0.095,
};

/// Graphix-T5 (Li et al. 2023): graph-aware encoder layers.
pub const GRAPHIX: PlmConfig = PlmConfig {
    name: "Graphix-T5",
    beam: 1,
    constrained: false,
    fidelity: 0.40,
    linking_error: 0.050,
    value_error: 0.085,
};

/// All four presets in the Table-4 order.
pub const ALL_PLM: [PlmConfig; 4] = [PICARD, RASAT, RESDSQL, GRAPHIX];

/// A PLM-based translator.
pub struct PlmTranslator {
    cfg: PlmConfig,
    predictor: Arc<SkeletonPredictor>,
    profile: LlmProfile,
    /// Shared run environment (same convention as [`purple::Purple`]). PLMs
    /// run local inference, so only the metrics registry and default event
    /// sink apply — the session and ledger are accepted but unused.
    env: RunEnv,
}

impl PlmTranslator {
    /// Build from a preset and a trained skeleton predictor.
    pub fn new(cfg: PlmConfig, predictor: Arc<SkeletonPredictor>) -> Self {
        // PLMs are grammar-constrained decoders: no hallucinated functions or
        // mangled identifiers, canonical SQL shapes (low equivalence bias), and the
        // preset's linking/value rates.
        let profile = LlmProfile {
            name: "PLM",
            linking_error: cfg.linking_error,
            value_error: cfg.value_error,
            halluc_rate: 0.0,
            equivalent_bias: 0.45,
            ..CHATGPT
        };
        PlmTranslator { cfg, predictor, profile, env: RunEnv::default() }
    }

    /// Attach a shared run environment, builder-style (same convention as
    /// [`purple::Purple::with_env`]): per-run metric snapshots are absorbed
    /// into `env.metrics`, and `env.events` is the default sink for jobs
    /// without their own.
    pub fn with_env(mut self, env: RunEnv) -> Self {
        self.env = env;
        self
    }
}

impl Translator for PlmTranslator {
    fn name(&self) -> String {
        self.cfg.name.to_string()
    }

    fn run(&self, job: Job<'_>) -> RunOutcome {
        let (ex, db) = (job.example, job.db);
        // idx + 1 reproduces the historical 1-based call counter.
        let seed = job.seed.unwrap_or_else(|| {
            0x9d2c5680u64.wrapping_mul(job.idx as u64 + 1).wrapping_add(self.cfg.name.len() as u64)
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = MetricsRegistry::default();
        let events = job.events.or(self.env.events.as_deref());
        let rec = events.map(|sink| sink.recorder(job.idx));

        let span = reg.span(Stage::SkeletonPrediction);
        let gold_skel = Skeleton::from_query(&ex.query);
        let beam = self.predictor.predict(&ex.nl, db, self.cfg.beam);
        let decoded_ok = if self.cfg.constrained {
            // Constrained decoding rescues the composition when it is anywhere in
            // the beam (invalid prefixes are pruned, so the right candidate
            // surfaces).
            beam.iter().any(|p| p.skeleton == gold_skel)
        } else {
            beam.first().map(|p| p.skeleton == gold_skel).unwrap_or(false)
        };
        span.finish(beam.len() as u64);
        let composition_ok = decoded_ok || rng.random_bool(self.cfg.fidelity);
        if let Some(rec) = &rec {
            rec.emit(
                Stage::SkeletonPrediction.name(),
                "decoded",
                &[
                    ("beam", EventValue::U64(beam.len() as u64)),
                    ("constrained", EventValue::Bool(self.cfg.constrained)),
                    ("composition_ok", EventValue::Bool(composition_ok)),
                ],
            );
        }

        // Variants degrade PLM schema linking too (Fig. 10's premise): fine-tuned
        // linkers depend on lexical overlap even more than LLMs do.
        let sql = write_sample(
            &self.profile,
            &ex.query,
            db,
            ex.linking_noise * 1.5,
            true,
            composition_ok,
            &mut rng,
        );
        let translation = Translation {
            sql: sql.clone(),
            // Local inference: no API tokens; report raw text sizes for reference.
            prompt_tokens: count_tokens(&ex.nl),
            output_tokens: count_tokens(&sql),
        };
        reg.count(Counter::Samples, 1);
        reg.count(Counter::PromptTokens, translation.prompt_tokens);
        reg.count(Counter::OutputTokens, translation.output_tokens);
        let metrics = reg.snapshot();
        if let Some(shared) = &self.env.metrics {
            shared.absorb(&metrics);
        }
        if let (Some(sink), Some(rec)) = (events, rec) {
            sink.publish(rec);
        }
        RunOutcome { translation, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval::evaluate;
    use nlmodel::SkeletonPredictor;
    use spidergen::{generate_suite, GenConfig};

    #[test]
    fn plm_rows_have_high_em_and_larger_ex_minus_ts_gap() {
        let suite = generate_suite(&GenConfig::tiny(66));
        let predictor = Arc::new(SkeletonPredictor::train(&suite.train));
        let resdsql = PlmTranslator::new(RESDSQL, predictor.clone());
        let r = evaluate(&resdsql, &suite.dev, None);
        assert!(r.overall.em_pct() > 50.0, "RESDSQL EM too low: {:.1}", r.overall.em_pct());
        let picard = PlmTranslator::new(PICARD, predictor);
        let rp = evaluate(&picard, &suite.dev, None);
        assert!(
            r.overall.em_pct() >= rp.overall.em_pct(),
            "RESDSQL {:.1} should be at least PICARD {:.1}",
            r.overall.em_pct(),
            rp.overall.em_pct()
        );
    }

    #[test]
    fn constrained_decoding_helps_composition() {
        let suite = generate_suite(&GenConfig::tiny(67));
        let predictor = Arc::new(SkeletonPredictor::train(&suite.train));
        let unconstrained = PlmConfig { constrained: false, fidelity: 0.0, beam: 4, ..PICARD };
        let constrained = PlmConfig { constrained: true, fidelity: 0.0, beam: 4, ..PICARD };
        let em = |cfg| {
            let t = PlmTranslator::new(cfg, predictor.clone());
            evaluate(&t, &suite.dev, None).overall.em_pct()
        };
        assert!(em(constrained) > em(unconstrained));
    }
}
