//! LLM-based baseline systems: ChatGPT-SQL, C3, plain zero-shot / few-shot,
//! DIN-SQL and DAIL-SQL, each wired through the same simulated LLM service so
//! the comparison isolates *strategy*, exactly as in the paper's §V-A3.

use crate::common::{fixed_demo_indices, raw_vote_with};
use engine::Database;
use eval::{Job, RunEnv, RunOutcome, Translation, Translator};
use llm::{Demonstration, GenerationRequest, LlmProfile, LlmService, Prompt, CONTEXT_LIMIT};
use nlmodel::{SchemaClassifier, SkeletonPredictor};
use obs::{Clock, Counter, EventValue, Fixer, Gauge, MetricsRegistry, Stage};
use purple::{PruneConfig, PrunedSchema, SchemaPruner};
use spidergen::types::Example;
use sqlkit::Level;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Models and demonstration pool shared by the baselines (trained once, usually by
/// borrowing them from a [`purple::Purple`] instance).
pub struct SharedModels {
    /// The trained schema classifier.
    pub classifier: Arc<SchemaClassifier>,
    /// The trained skeleton predictor.
    pub predictor: Arc<SkeletonPredictor>,
    /// The prompt-ready demonstration pool.
    pub pool: Arc<Vec<Demonstration>>,
}

impl SharedModels {
    /// Borrow the trained models from a PURPLE instance.
    pub fn from_purple(p: &purple::Purple) -> Self {
        SharedModels {
            classifier: Arc::new(p.classifier().clone()),
            predictor: Arc::new(p.predictor().clone()),
            pool: Arc::new(p.pool().to_vec()),
        }
    }
}

/// Which baseline strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Liu et al.'s plain zero-shot probe ("ChatGPT-SQL").
    ChatGptSql,
    /// C3: engineered zero-shot instruction + calibrated schema hints + voting,
    /// with uncontrolled output length.
    C3,
    /// Plain zero-shot (the paper's "Zero-shot (GPT4)" row).
    ZeroShot,
    /// Plain few-shot with fixed random demonstrations.
    FewShot,
    /// DIN-SQL: decomposed chain-of-thought few-shot with self-correction; huge
    /// prompts, reasoning-sensitive.
    DinSql,
    /// DAIL-SQL: demonstration selection by order-insensitive keyword Jaccard
    /// similarity over masked questions and predicted SQL.
    DailSql,
}

/// A baseline translator.
pub struct LlmBaseline {
    strategy: Strategy,
    profile: LlmProfile,
    service: LlmService,
    models: SharedModels,
    seed: u64,
    /// Shared run environment (same convention as [`purple::Purple`]); the
    /// ledger lives inside `service`.
    env: RunEnv,
    clock: Clock,
}

impl LlmBaseline {
    /// Create a baseline with the given strategy and model tier.
    pub fn new(strategy: Strategy, profile: LlmProfile, models: SharedModels) -> Self {
        LlmBaseline {
            strategy,
            profile,
            service: LlmService::new(profile),
            models,
            seed: 0x51ec7e11,
            env: RunEnv::default(),
            clock: Clock::default(),
        }
    }

    /// Attach a whole shared run environment, builder-style, replacing any
    /// previous one (same convention as [`purple::Purple::with_env`]):
    /// DIN-SQL's self-correction and the C3 / DAIL-SQL votes execute through
    /// the session, LLM calls are recorded into the ledger, per-run metric
    /// snapshots are absorbed into the registry (whose clock is adopted), and
    /// `env.events` is the default sink for jobs without their own.
    pub fn with_env(mut self, env: RunEnv) -> Self {
        if let Some(metrics) = &env.metrics {
            self.clock = metrics.clock();
        }
        self.service.set_ledger(env.ledger.clone());
        self.env = env;
        self
    }

    /// Jaccard similarity of two token sets (DAIL-SQL's similarity function; the
    /// order-insensitivity is exactly what §IV-C1 criticizes).
    fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count() as f64;
        let union = a.union(b).count() as f64;
        inter / union
    }

    fn dail_select(&self, ex: &Example, db: &Database, k: usize) -> Vec<usize> {
        // Masked-question tokens.
        let q_tokens: BTreeSet<String> =
            nlmodel::features::tokenize_nl(&ex.nl).into_iter().collect();
        // Predicted-SQL keyword set (order-free, the DAIL shortcut).
        let pred = self.models.predictor.predict(&ex.nl, db, 1);
        let pred_kw: BTreeSet<sqlkit::SkelTok> = pred
            .first()
            .map(|p| p.skeleton.at_level(Level::Keywords).into_iter().collect())
            .unwrap_or_default();
        let mut scored: Vec<(usize, f64)> = self
            .models
            .pool
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let d_tokens: BTreeSet<String> =
                    nlmodel::features::tokenize_nl(&d.nl).into_iter().collect();
                let d_kw: BTreeSet<sqlkit::SkelTok> =
                    d.skeleton.at_level(Level::Keywords).into_iter().collect();
                // DAIL leans on the predicted-SQL keyword set (order-free — the
                // §IV-C1 weakness) with masked-question similarity as secondary;
                // a wrong preliminary prediction poisons the retrieval.
                let sim = 0.3 * Self::jaccard(&q_tokens, &d_tokens)
                    + 0.7 * Self::jaccard(&pred_kw, &d_kw);
                (i, sim)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(k);
        scored.into_iter().map(|(i, _)| i).collect()
    }
}

impl Translator for LlmBaseline {
    fn name(&self) -> String {
        let s = match self.strategy {
            Strategy::ChatGptSql => "ChatGPT-SQL",
            Strategy::C3 => "C3",
            Strategy::ZeroShot => "Zero-shot",
            Strategy::FewShot => "Few-shot",
            Strategy::DinSql => "DIN-SQL",
            Strategy::DailSql => "DAIL-SQL",
        };
        format!("{s} ({})", self.profile.name)
    }

    fn run(&self, job: Job<'_>) -> RunOutcome {
        let (ex, db) = (job.example, job.db);
        let seed = job.seed(self.seed);
        let reg = MetricsRegistry::new(self.clock);
        let events = job.events.or(self.env.events.as_deref());
        let rec = events.map(|sink| sink.recorder(job.idx));

        // Per-strategy prompt composition. DAIL-SQL's retrieval runs the
        // skeleton predictor internally, so the whole composition step counts
        // as demonstration selection.
        let span = reg.span(Stage::DemoSelection);
        reg.set_gauge(Gauge::PoolSize, self.models.pool.len() as u64);
        let (instruction, demos, instruction_quality, cot, n, extra_out, pruned) =
            match self.strategy {
                Strategy::ChatGptSql => (
                    "Translate the question into SQL.".to_string(),
                    Vec::new(),
                    0.0,
                    false,
                    1,
                    0,
                    false,
                ),
                Strategy::C3 => (
                    // C3's "clear prompting" instruction block.
                    "### Follow these rules: select only needed columns; use JOIN \
                     only when necessary; prefer simple SQL; output SQLite."
                        .to_string(),
                    Vec::new(),
                    1.0,
                    false,
                    20,
                    // C3 does not control output length (~7k tokens per query).
                    6000,
                    true,
                ),
                Strategy::ZeroShot => (
                    "Write a SQL query for the question.".to_string(),
                    Vec::new(),
                    0.0,
                    false,
                    1,
                    0,
                    false,
                ),
                Strategy::FewShot => {
                    let idx = fixed_demo_indices(self.models.pool.len(), 8, 7);
                    let demos: Vec<Demonstration> =
                        idx.into_iter().map(|i| self.models.pool[i].clone()).collect();
                    ("Answer like the examples.".to_string(), demos, 0.0, false, 1, 0, false)
                }
                Strategy::DinSql => {
                    // DIN-SQL ships a fixed, hand-curated CoT prompt (~10k tokens
                    // with GPT-4): fixed demos + huge reasoning output.
                    let idx = fixed_demo_indices(self.models.pool.len(), 16, 11);
                    let demos: Vec<Demonstration> =
                        idx.into_iter().map(|i| self.models.pool[i].clone()).collect();
                    (
                        "Decompose the question, classify its complexity, draft \
                         intermediate representation, then write the SQL."
                            .to_string(),
                        demos,
                        0.3,
                        true,
                        1,
                        5500,
                        false,
                    )
                }
                Strategy::DailSql => {
                    let idx = self.dail_select(ex, db, 16);
                    let demos: Vec<Demonstration> =
                        idx.into_iter().map(|i| self.models.pool[i].clone()).collect();
                    ("Answer like the examples.".to_string(), demos, 0.2, false, 8, 0, true)
                }
            };
        span.finish(demos.len() as u64);
        if let Some(rec) = &rec {
            rec.emit(
                Stage::DemoSelection.name(),
                "selected",
                &[
                    ("selected", EventValue::U64(demos.len() as u64)),
                    ("pool", EventValue::U64(self.models.pool.len() as u64)),
                ],
            );
        }

        let span = reg.span(Stage::SchemaPruning);
        let (schema_text, prune_quality) = if pruned {
            let pruner = SchemaPruner::new(&self.models.classifier, PruneConfig::default());
            let p = pruner.prune(&ex.nl, db);
            (p.to_text(&db.schema), p.quality(&db.schema))
        } else {
            (PrunedSchema::full(&db.schema).to_text(&db.schema), 0.0)
        };
        let schema_cols: usize = db.schema.tables.iter().map(|t| t.columns.len()).sum();
        span.finish(schema_cols as u64);
        if let Some(rec) = &rec {
            rec.emit(
                Stage::SchemaPruning.name(),
                "pruned",
                &[
                    ("cols", EventValue::U64(schema_cols as u64)),
                    ("quality", EventValue::F64(prune_quality)),
                    ("pruned", EventValue::Bool(pruned)),
                ],
            );
        }

        let span = reg.span(Stage::PromptAssembly);
        let mut prompt =
            Prompt { instruction, demonstrations: demos, schema_text, nl: ex.nl.clone() };
        // Baselines fit to the raw context limit; DAIL-SQL controls to ~3k.
        let budget = match self.strategy {
            Strategy::DailSql => 3000,
            _ => CONTEXT_LIMIT,
        };
        prompt.fit_to_budget(budget);
        reg.set_gauge(Gauge::DemosInPrompt, prompt.demonstrations.len() as u64);
        span.finish(prompt.token_len());
        if let Some(rec) = &rec {
            rec.emit(
                Stage::PromptAssembly.name(),
                "assembled",
                &[
                    ("demos_in_prompt", EventValue::U64(prompt.demonstrations.len() as u64)),
                    ("prompt_tokens", EventValue::U64(prompt.token_len())),
                ],
            );
        }

        let mut request = GenerationRequest::for_prompt(&prompt, &ex.query, db)
            .linking_noise(ex.linking_noise)
            .prune_quality(prune_quality)
            .instruction_quality(instruction_quality)
            .cot(cot)
            .n(n)
            .seed(seed)
            .extra_output_tokens(extra_out)
            .metrics(&reg);
        if let Some(rec) = &rec {
            request = request.events(rec);
        }
        let response = self.service.complete(&request);

        // DIN-SQL self-corrects (its final module); C3/DAIL vote; the rest emit raw.
        let session = self.env.session_or_disabled();
        let sql = match self.strategy {
            Strategy::DinSql => {
                let span = reg.span(Stage::Adaption);
                let mut rng = rand::SeedableRng::seed_from_u64(seed ^ 0xd1);
                let fixed =
                    purple::adapt_sql_with(&session.bind(db), &response.samples[0], &mut rng);
                reg.count(Counter::Samples, 1);
                if !fixed.fixes.is_empty() {
                    let bucket = if fixed.executable {
                        Counter::RepairedSamples
                    } else {
                        Counter::UnrepairedSamples
                    };
                    reg.count(bucket, 1);
                }
                for fix in &fixed.fixes {
                    if let Some(fixer) = Fixer::from_category(fix) {
                        reg.record_fix(fixer, fixed.executable);
                    }
                }
                span.finish(1);
                if let Some(rec) = &rec {
                    rec.emit(
                        Stage::Adaption.name(),
                        "repair",
                        &[
                            ("fixes", EventValue::U64(fixed.fixes.len() as u64)),
                            ("executable", EventValue::Bool(fixed.executable)),
                        ],
                    );
                }
                fixed.sql
            }
            Strategy::C3 | Strategy::DailSql => {
                raw_vote_with(&response.samples, &session.bind(db), Some(&reg), rec.as_ref())
            }
            _ => response.samples[0].clone(),
        };
        let translation = Translation {
            sql,
            prompt_tokens: response.prompt_tokens,
            output_tokens: response.output_tokens,
        };
        let metrics = reg.snapshot();
        if let Some(shared) = &self.env.metrics {
            shared.absorb(&metrics);
        }
        if let (Some(sink), Some(rec)) = (events, rec) {
            sink.publish(rec);
        }
        RunOutcome { translation, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval::evaluate;
    use llm::{CHATGPT, GPT4};
    use purple::{Purple, PurpleConfig};
    use spidergen::{generate_suite, GenConfig};

    fn setup() -> (spidergen::Suite, SharedModels) {
        let mut cfg = GenConfig::tiny(55);
        cfg.dev_examples = 120;
        let suite = generate_suite(&cfg);
        let purple = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
        let models = SharedModels::from_purple(&purple);
        (suite, models)
    }

    fn run(strategy: Strategy, profile: LlmProfile) -> (f64, f64) {
        let (suite, models) = setup();
        let t = LlmBaseline::new(strategy, profile, models);
        let r = evaluate(&t, &suite.dev, None);
        (r.overall.em_pct(), r.overall.ex_pct())
    }

    #[test]
    fn zero_shot_has_low_em_but_higher_ex() {
        let (em, ex) = run(Strategy::ChatGptSql, CHATGPT);
        assert!(em < 70.0, "zero-shot EM should be weak: {em:.1}");
        assert!(ex > em, "EX {ex:.1} should exceed EM {em:.1} (equivalence rewrites)");
    }

    #[test]
    fn demonstration_quality_orders_strategies() {
        let (em_zero, _) = run(Strategy::ChatGptSql, CHATGPT);
        let (em_dail, _) = run(Strategy::DailSql, CHATGPT);
        assert!(em_dail > em_zero, "DAIL {em_dail:.1} should beat zero-shot {em_zero:.1}");
    }

    #[test]
    fn din_sql_collapses_on_weak_reasoner() {
        let (em_gpt4, _) = run(Strategy::DinSql, GPT4);
        let (em_chatgpt, _) = run(Strategy::DinSql, CHATGPT);
        assert!(
            em_gpt4 > em_chatgpt + 1.0,
            "DIN-SQL should be reasoning-sensitive: GPT4 {em_gpt4:.1} vs ChatGPT {em_chatgpt:.1}"
        );
    }

    #[test]
    fn c3_consumes_many_output_tokens() {
        let (suite, models) = setup();
        let c3 = LlmBaseline::new(Strategy::C3, CHATGPT, models);
        let r = evaluate(&c3, &suite.dev, None);
        assert!(r.avg_output_tokens > 5000.0, "C3 output {:.0}", r.avg_output_tokens);
        assert!(r.avg_prompt_tokens < 2000.0, "C3 prunes its input: {:.0}", r.avg_prompt_tokens);
    }

    #[test]
    fn names_include_model() {
        let (_, models) = setup();
        let t = LlmBaseline::new(Strategy::DailSql, GPT4, models);
        assert_eq!(t.name(), "DAIL-SQL (GPT4)");
    }
}
