//! Property tests of the LLM substrate: tokenizer monotonicity, prompt budget
//! fitting, profile-mechanism monotonicity, and service determinism.

use llm::{
    count_tokens, Demonstration, GenerationRequest, LlmService, Prompt, CHATGPT, CONTEXT_LIMIT,
};
use proptest::prelude::*;
use sqlkit::Skeleton;

fn demo(ix: usize, schema_cols: usize) -> Demonstration {
    let cols: Vec<String> = (0..schema_cols).map(|i| format!("c{i} int")).collect();
    let schema = format!("create table t{ix} ({})\n", cols.join(", "));
    Demonstration {
        schema_text: schema.clone(),
        full_schema_text: schema,
        nl: format!("question {ix} about table t{ix}?"),
        sql: format!("SELECT c0 FROM t{ix} WHERE c1 = {ix}"),
        skeleton: Skeleton::parse("SELECT _ FROM _ WHERE _ = _"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tokenizer_is_monotone_under_concatenation(a in ".{0,200}", b in ".{0,200}") {
        let joined = format!("{a}{b}");
        prop_assert!(count_tokens(&joined) + 1 >= count_tokens(&a));
        prop_assert!(count_tokens(&joined) + 1 >= count_tokens(&b));
    }

    #[test]
    fn prompt_fits_any_budget_above_core(n_demos in 0usize..30, budget in 60u64..5000) {
        let mut p = Prompt {
            instruction: "Write SQL.".into(),
            demonstrations: (0..n_demos).map(|i| demo(i, 4)).collect(),
            schema_text: "create table u (a int, b text)\n".into(),
            nl: "how many u are there?".into(),
        };
        let core_len = Prompt {
            instruction: p.instruction.clone(),
            demonstrations: vec![],
            schema_text: p.schema_text.clone(),
            nl: p.nl.clone(),
        }
        .token_len();
        p.fit_to_budget(budget);
        if budget >= core_len {
            prop_assert!(p.token_len() <= budget, "{} > {budget}", p.token_len());
        } else {
            // Cannot fit: every demo must at least be gone.
            prop_assert!(p.demonstrations.is_empty());
        }
    }

    #[test]
    fn composition_probability_is_monotone_in_support(ix in 0usize..100) {
        // More (or finer) support never lowers the probability.
        let svc = LlmService::new(CHATGPT);
        let sqls = [
            "SELECT a FROM t WHERE b = 1",
            "SELECT COUNT(*) FROM t GROUP BY a",
            "SELECT a FROM t ORDER BY b DESC LIMIT 1",
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)",
        ];
        let gold = sqlkit::parse(sqls[ix % sqls.len()]).unwrap();
        let required = Skeleton::from_query(&gold);
        let exact = required.clone();
        let (p_none, _) = svc.composition_probability(&required, &[], &gold, 0.0, false);
        let (p_exact, _) =
            svc.composition_probability(&required, &[&exact], &gold, 0.0, false);
        prop_assert!(p_exact >= p_none);
        // Instruction quality is monotone too.
        let (p_instr, _) = svc.composition_probability(&required, &[], &gold, 1.0, false);
        prop_assert!(p_instr >= p_none);
    }

    #[test]
    fn service_is_deterministic_and_respects_n(seed in 0u64..500, n in 1usize..8) {
        let mut schema = sqlkit::Schema::new("d");
        schema.tables.push(sqlkit::Table {
            name: "t".into(),
            display: "t".into(),
            columns: vec![
                sqlkit::Column::new("a", sqlkit::ColumnType::Int),
                sqlkit::Column::new("b", sqlkit::ColumnType::Text),
            ],
            primary_key: Some(0),
        });
        let db = engine::Database::empty(schema);
        let gold = sqlkit::parse("SELECT b FROM t WHERE a = 1").unwrap();
        let prompt = Prompt {
            instruction: String::new(),
            demonstrations: vec![demo(0, 3)],
            schema_text: "create table t (a int, b text)\n".into(),
            nl: "what is the b of t with a 1?".into(),
        };
        let svc = LlmService::new(CHATGPT);
        let req =
            GenerationRequest::for_prompt(&prompt, &gold, &db).prune_quality(0.5).n(n).seed(seed);
        let a = svc.complete(&req);
        let b = svc.complete(&req);
        prop_assert_eq!(&a.samples, &b.samples);
        prop_assert_eq!(a.samples.len(), n);
        prop_assert!(a.prompt_tokens <= CONTEXT_LIMIT);
        // Every sample parses.
        for s in &a.samples {
            prop_assert!(sqlkit::parse(s).is_ok(), "unparseable sample `{s}`");
        }
    }
}
