//! The simulated LLM service: prompt in, n SQL samples out, with token and cost
//! accounting and the composition-prior mechanism of the paper.
//!
//! How the simulation works (see DESIGN.md, substitution table):
//!
//! 1. The service receives the prompt **and** the example's intent (the gold query
//!    plus the variant-induced linking noise). Intent understanding is simulated —
//!    that is the documented substitution for "LLMs have strong NL understanding".
//! 2. Composition knowledge is **mechanistic**: the probability of writing the
//!    correct operator composition starts from the model's prior (by hardness) and
//!    is boosted by the *finest abstraction level at which any in-context
//!    demonstration matches the required skeleton* (§IV-C1's hierarchy). This is
//!    the causal link every experiment in the paper measures.
//! 3. Errors are layered per sample (writer.rs); samples vary with temperature,
//!    enabling execution-consistency voting.

use crate::profile::LlmProfile;
use crate::prompt::Prompt;
use crate::rewrites::near_miss;
use crate::tokenizer::{count_tokens, CONTEXT_LIMIT};
use crate::writer::{inject_hallucination, inject_linking_slip, inject_value_error};
use engine::Database;
use rand::prelude::*;
use rand::rngs::StdRng;
use sqlkit::{hardness, Level, Query, Skeleton};

/// One generation request.
///
/// Construct with the [`GenerationRequest::for_prompt`] builder and chain the
/// options that differ from the defaults; new observability fields can then be
/// added without breaking construction sites:
///
/// ```ignore
/// let req = GenerationRequest::for_prompt(&prompt, &gold, &db)
///     .n(10)
///     .seed(job_seed)
///     .metrics(&registry);
/// ```
#[derive(Debug)]
pub struct GenerationRequest<'a> {
    /// The assembled prompt.
    pub prompt: &'a Prompt,
    /// The example's intent (gold query): the simulated NL-understanding channel.
    pub gold: &'a Query,
    /// The database the SQL must target.
    pub db: &'a Database,
    /// Extra schema-linking noise (variant splits; 0 for plain Spider).
    pub linking_noise: f64,
    /// How aggressively the prompt schema was pruned, in `[0, 1]`: 0 = full schema,
    /// 1 = hypothetical single-item schema. Smaller prompts mean fewer confusable
    /// items, reducing linking slips and hallucinations proportionally (§IV-A).
    pub prune_quality: f64,
    /// Instruction-engineering quality in `[0,1]` (C3-style zero-shot prompts).
    pub instruction_quality: f64,
    /// Chain-of-thought prompting (DIN-SQL style).
    pub cot: bool,
    /// Number of samples (execution-consistency n).
    pub n: usize,
    /// Per-request determinism seed.
    pub seed: u64,
    /// Additional output tokens the strategy emits beyond SQL (CoT reasoning
    /// text, C3's uncontrolled chatter); added once per call.
    pub extra_output_tokens: u64,
    /// Per-request metrics registry: `complete` records its llm-call span,
    /// token counters, and context-overflow events here. Takes precedence over
    /// any registry attached to the service with `with_metrics`.
    pub metrics: Option<&'a obs::MetricsRegistry>,
    /// Per-request structured-event recorder: `complete` emits one `llm-call`
    /// event (samples, billed tokens, support level) here.
    pub events: Option<&'a obs::EventRecorder>,
    /// Per-request span recorder: `complete` records one `llm-call` span
    /// (virtual work = billed prompt + output tokens, mirroring the metrics
    /// span) into the request's trace tree (DESIGN.md §14).
    pub tracer: Option<&'a obs::TraceRecorder>,
}

impl<'a> GenerationRequest<'a> {
    /// A request with the default knobs: no linking noise, unpruned schema, no
    /// instruction engineering, no CoT, one sample, seed 0, no extra output
    /// tokens, no metrics.
    pub fn for_prompt(prompt: &'a Prompt, gold: &'a Query, db: &'a Database) -> Self {
        GenerationRequest {
            prompt,
            gold,
            db,
            linking_noise: 0.0,
            prune_quality: 0.0,
            instruction_quality: 0.0,
            cot: false,
            n: 1,
            seed: 0,
            extra_output_tokens: 0,
            metrics: None,
            events: None,
            tracer: None,
        }
    }

    /// Set the linking noise (variant splits).
    pub fn linking_noise(mut self, v: f64) -> Self {
        self.linking_noise = v;
        self
    }

    /// Set the schema-pruning quality.
    pub fn prune_quality(mut self, v: f64) -> Self {
        self.prune_quality = v;
        self
    }

    /// Set the instruction-engineering quality.
    pub fn instruction_quality(mut self, v: f64) -> Self {
        self.instruction_quality = v;
        self
    }

    /// Enable/disable chain-of-thought prompting.
    pub fn cot(mut self, on: bool) -> Self {
        self.cot = on;
        self
    }

    /// Set the number of samples.
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Set the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the extra (non-SQL) output tokens billed once per call.
    pub fn extra_output_tokens(mut self, tokens: u64) -> Self {
        self.extra_output_tokens = tokens;
        self
    }

    /// Record this request's metrics into a registry.
    pub fn metrics(mut self, registry: &'a obs::MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Record this request's structured trace events into a recorder.
    pub fn events(mut self, recorder: &'a obs::EventRecorder) -> Self {
        self.events = Some(recorder);
        self
    }

    /// Record this request's span into a request-scoped trace recorder.
    pub fn tracer(mut self, tracer: &'a obs::TraceRecorder) -> Self {
        self.tracer = Some(tracer);
        self
    }
}

/// The service's response.
#[derive(Debug, Clone)]
pub struct GenerationResponse {
    /// SQL samples, length `n`.
    pub samples: Vec<String>,
    /// Billed prompt tokens (clipped at the context limit).
    pub prompt_tokens: u64,
    /// Billed output tokens.
    pub output_tokens: u64,
    /// Finest abstraction level at which an in-context demonstration matched the
    /// required composition, if any (diagnostic).
    pub support_level: Option<Level>,
}

/// The simulated LLM.
#[derive(Debug, Clone)]
pub struct LlmService {
    profile: LlmProfile,
    ledger: Option<std::sync::Arc<crate::ledger::CostLedger>>,
    metrics: Option<std::sync::Arc<obs::MetricsRegistry>>,
}

impl LlmService {
    /// A service instance for a model tier.
    pub fn new(profile: LlmProfile) -> Self {
        LlmService { profile, ledger: None, metrics: None }
    }

    /// Attach a shared cost ledger, builder-style: every `complete` call records
    /// its billed prompt/output tokens (§V-D budget accounting).
    pub fn with_ledger(mut self, ledger: std::sync::Arc<crate::ledger::CostLedger>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Replace (or detach) the shared cost ledger in place — the `&mut`
    /// counterpart of [`LlmService::with_ledger`], used by translators when a
    /// whole run environment is swapped via `with_env`.
    pub fn set_ledger(&mut self, ledger: Option<std::sync::Arc<crate::ledger::CostLedger>>) {
        self.ledger = ledger;
    }

    /// Attach a shared metrics registry, builder-style (same convention as
    /// `with_ledger`): every `complete` call without a per-request registry
    /// records its llm-call span, token counters, and context-overflow events
    /// here.
    pub fn with_metrics(mut self, metrics: std::sync::Arc<obs::MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The model profile.
    pub fn profile(&self) -> &LlmProfile {
        &self.profile
    }

    /// Finest level at which any of `demo_skeletons` matches `required`
    /// (in-context composition support).
    pub fn support_level(required: &Skeleton, demo_skeletons: &[&Skeleton]) -> Option<Level> {
        for level in Level::ALL {
            let target = required.at_level(level);
            if demo_skeletons.iter().any(|d| d.at_level(level) == target) {
                return Some(level);
            }
        }
        None
    }

    /// Probability of writing the correct composition for this request.
    pub fn composition_probability(
        &self,
        required: &Skeleton,
        demos_in_context: &[&Skeleton],
        gold: &Query,
        instruction_quality: f64,
        cot: bool,
    ) -> (f64, Option<Level>) {
        let p = &self.profile;
        let h = hardness(gold) as usize;
        let mut prob = p.base_composition[h];
        let support = Self::support_level(required, demos_in_context);
        if let Some(level) = support {
            prob += p.boost_for_level(level);
        }
        prob += instruction_quality * p.instruction_boost;
        if cot {
            // CoT's composition gain is modest (most of its effect is on the
            // *form* of near-misses, handled at sampling time): scale by 0.3.
            prob += 0.3 * p.cot_gain * (p.reasoning - p.cot_floor);
        }
        (prob.clamp(0.02, 0.99), support)
    }

    /// Run a generation request.
    pub fn complete(&self, req: &GenerationRequest<'_>) -> GenerationResponse {
        let registry = req.metrics.or(self.metrics.as_deref());
        let span = registry.map(|r| r.span(obs::Stage::LlmCall));
        let tspan = req.tracer.map(|t| t.start(obs::Stage::LlmCall.name()));
        let mut rng = StdRng::seed_from_u64(req.seed);
        let full_tokens = req.prompt.token_len();
        let prompt_tokens = full_tokens.min(CONTEXT_LIMIT);

        // Demonstrations beyond the context limit are silently truncated by the
        // API and provide no composition support.
        let mut effective: Vec<&Skeleton> = Vec::new();
        let head = count_tokens(&req.prompt.instruction)
            + count_tokens(&req.prompt.schema_text)
            + count_tokens(&req.prompt.nl)
            + 8;
        let mut used = head;
        for d in &req.prompt.demonstrations {
            used += d.token_len();
            if used > CONTEXT_LIMIT {
                break;
            }
            effective.push(&d.skeleton);
        }

        let required = Skeleton::from_query(req.gold);
        let (mut prob, support_level) = self.composition_probability(
            &required,
            &effective,
            req.gold,
            req.instruction_quality,
            req.cot,
        );
        // §IV-C1's critique of set-based similarity, made mechanistic: an
        // in-context demonstration with the *same keyword set but a different
        // sequence* actively teaches the wrong operator ordering. Unless a
        // Detail-level match anchors the right composition, such confusers pull
        // the model toward the wrong structure.
        if support_level != Some(Level::Detail) {
            let req_kw_seq = required.at_level(Level::Keywords);
            let mut req_kw_set: Vec<_> = req_kw_seq.clone();
            req_kw_set.sort();
            let has_confuser = effective.iter().any(|d| {
                let seq = d.at_level(Level::Keywords);
                let mut set: Vec<_> = seq.clone();
                set.sort();
                set == req_kw_set && seq != req_kw_seq
            });
            if has_confuser {
                prob = (prob - 0.15).max(0.02);
            }
        }

        // --- Systematic (per-request) error draws --------------------------
        // An LLM's mistakes on one prompt are correlated across samples: the
        // misread of the question, the wrong constant, and the preferred (wrong)
        // composition repeat from sample to sample. Only decoding-time
        // hallucinations vary. This is what keeps execution-consistency voting
        // honest: it washes out hallucinations, not misunderstandings.
        let p = &self.profile;
        // Chain-of-thought mostly fixes *semantics*: strong reasoners convert
        // would-be corrupting mistakes into equivalence-preserving form differences
        // (DIN-SQL's high EX / mediocre EM); weak reasoners propagate errors and
        // corrupt more (the Table-5 ChatGPT collapse).
        let eq_bias = if req.cot {
            (p.equivalent_bias + 0.5 * (p.reasoning - p.cot_floor)).clamp(0.05, 0.95)
        } else {
            p.equivalent_bias
        };
        let wrong_template =
            near_miss(req.gold, req.db, eq_bias, &mut rng).unwrap_or_else(|| req.gold.clone());
        let q = req.prune_quality.clamp(0.0, 1.0);
        let link_factor = 1.0 - (1.0 - p.pruned_linking_factor) * q;
        let p_link = ((p.linking_error + req.linking_noise) * link_factor).min(0.9);
        let slip = rng.random_bool(p_link);
        let value_err = rng.random_bool(p.value_error);
        let mut gold_tmpl = req.gold.clone();
        let mut wrong_tmpl = wrong_template;
        if slip {
            let mut slip_rng = StdRng::seed_from_u64(req.seed ^ 0x51a9);
            inject_linking_slip(&mut gold_tmpl, req.db, &mut slip_rng);
            let mut slip_rng = StdRng::seed_from_u64(req.seed ^ 0x51a9);
            inject_linking_slip(&mut wrong_tmpl, req.db, &mut slip_rng);
        }
        if value_err {
            let mut v_rng = StdRng::seed_from_u64(req.seed ^ 0x7a1e);
            inject_value_error(&mut gold_tmpl, req.db, &mut v_rng);
            let mut v_rng = StdRng::seed_from_u64(req.seed ^ 0x7a1e);
            inject_value_error(&mut wrong_tmpl, req.db, &mut v_rng);
        }
        let p_h = p.halluc_rate * (1.0 - (1.0 - p.pruned_halluc_factor) * q);
        // Part of the hallucination mass is *systematic* — the model consistently
        // reaches for CONCAT or the wrong qualifier on this prompt, in every
        // sample. Voting cannot remove it; only the Database Adaption repair loop
        // can (the Table-6 "-Database Adaption" deltas: EM -1.4, EX -3.0).
        if rng.random_bool(p_h * 0.28) {
            let mut h_rng = StdRng::seed_from_u64(req.seed ^ 0xa511);
            inject_hallucination(&mut gold_tmpl, req.db, &mut h_rng);
            let mut h_rng = StdRng::seed_from_u64(req.seed ^ 0xa511);
            inject_hallucination(&mut wrong_tmpl, req.db, &mut h_rng);
        }

        // The model *commits* to a composition for this prompt (its belief about
        // the right operator structure is a property of the prompt, not of the
        // sampling temperature); individual samples deviate from the commitment
        // with a small temperature-controlled flip. Consequently consistency
        // voting corrects decoding noise and hallucinations — a few points, as in
        // the paper's Fig. 11 — but cannot vote away a misunderstanding.
        let committed_ok = rng.random_bool(prob);
        let mut samples = Vec::with_capacity(req.n);
        let mut output_tokens = req.extra_output_tokens;
        for _ in 0..req.n.max(1) {
            let flip = rng.random_bool(self.profile.temperature);
            let composition_ok = committed_ok ^ flip;
            let mut q = if composition_ok { gold_tmpl.clone() } else { wrong_tmpl.clone() };
            if rng.random_bool(p_h * 0.65) {
                inject_hallucination(&mut q, req.db, &mut rng);
            }
            let sql = q.to_string();
            output_tokens += count_tokens(&sql) + 2;
            samples.push(sql);
        }
        if let Some(ledger) = &self.ledger {
            ledger.record(prompt_tokens, output_tokens);
        }
        if let Some(reg) = registry {
            reg.count(obs::Counter::LlmCalls, 1);
            reg.count(obs::Counter::PromptTokens, prompt_tokens);
            reg.count(obs::Counter::OutputTokens, output_tokens);
            if full_tokens > CONTEXT_LIMIT {
                reg.count(obs::Counter::ContextOverflows, 1);
            }
        }
        if let Some(span) = span {
            span.finish(prompt_tokens + output_tokens);
        }
        if let (Some(tracer), Some(token)) = (req.tracer, tspan) {
            tracer.finish(token, prompt_tokens + output_tokens);
        }
        if let Some(rec) = req.events {
            rec.emit(
                obs::Stage::LlmCall.name(),
                "completed",
                &[
                    ("samples", obs::EventValue::U64(samples.len() as u64)),
                    ("prompt_tokens", obs::EventValue::U64(prompt_tokens)),
                    ("output_tokens", obs::EventValue::U64(output_tokens)),
                    ("overflow", obs::EventValue::Bool(full_tokens > CONTEXT_LIMIT)),
                    (
                        "support",
                        obs::EventValue::Str(
                            support_level.map_or("none".to_string(), |l| format!("{l:?}")),
                        ),
                    ),
                ],
            );
        }
        GenerationResponse { samples, prompt_tokens, output_tokens, support_level }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CHATGPT, GPT4};
    use crate::prompt::Demonstration;
    use sqlkit::parse;

    fn db() -> Database {
        let mut s = sqlkit::Schema::new("d");
        s.tables.push(sqlkit::Table {
            name: "t".into(),
            display: "t".into(),
            columns: vec![
                sqlkit::Column::new("id", sqlkit::ColumnType::Int),
                sqlkit::Column::new("name", sqlkit::ColumnType::Text),
            ],
            primary_key: Some(0),
        });
        Database::empty(s)
    }

    fn demo_with_skeleton(sk: &str) -> Demonstration {
        Demonstration {
            schema_text: "create table x (a int)\n".into(),
            full_schema_text: "create table x (a int)\n".into(),
            nl: "q?".into(),
            sql: "SELECT a FROM x".into(),
            skeleton: Skeleton::parse(sk),
        }
    }

    #[test]
    fn support_level_finds_finest_match() {
        let required = Skeleton::from_query(&parse("SELECT name FROM t WHERE id = 1").unwrap());
        let exact = Skeleton::parse("SELECT _ FROM _ WHERE _ = _");
        let structural = Skeleton::parse("SELECT _ FROM _ WHERE _ >= _");
        let clauseish = Skeleton::parse("SELECT _ , _ FROM _ WHERE _ > _ AND _ = _");
        assert_eq!(LlmService::support_level(&required, &[&exact]), Some(Level::Detail));
        assert_eq!(LlmService::support_level(&required, &[&structural]), Some(Level::Structure));
        assert_eq!(LlmService::support_level(&required, &[&clauseish]), Some(Level::Clause));
        assert_eq!(LlmService::support_level(&required, &[]), None);
        // Best of several wins.
        assert_eq!(
            LlmService::support_level(&required, &[&clauseish, &exact]),
            Some(Level::Detail)
        );
    }

    #[test]
    fn composition_probability_orders_as_the_paper_requires() {
        let svc = LlmService::new(CHATGPT);
        let gold = parse("SELECT name FROM t WHERE id = 1").unwrap();
        let required = Skeleton::from_query(&gold);
        let exact = Skeleton::parse("SELECT _ FROM _ WHERE _ = _");
        let clauseish = Skeleton::parse("SELECT _ , _ FROM _ WHERE _ > _ AND _ = _");
        let (p_none, _) = svc.composition_probability(&required, &[], &gold, 0.0, false);
        let (p_clause, _) =
            svc.composition_probability(&required, &[&clauseish], &gold, 0.0, false);
        let (p_exact, _) = svc.composition_probability(&required, &[&exact], &gold, 0.0, false);
        let (p_instr, _) = svc.composition_probability(&required, &[], &gold, 1.0, false);
        assert!(p_none < p_clause && p_clause < p_exact);
        assert!(p_none < p_instr && p_instr < p_clause);
        // GPT-4 benefits from CoT, ChatGPT barely does.
        let svc4 = LlmService::new(GPT4);
        let (p4_cot, _) = svc4.composition_probability(&required, &[], &gold, 0.0, true);
        let (p4_plain, _) = svc4.composition_probability(&required, &[], &gold, 0.0, false);
        assert!(p4_cot > p4_plain + 0.04);
    }

    #[test]
    fn complete_is_deterministic_per_seed_and_counts_tokens() {
        let db = db();
        let gold = parse("SELECT name FROM t WHERE id = 1").unwrap();
        let prompt = Prompt {
            instruction: String::new(),
            demonstrations: vec![demo_with_skeleton("SELECT _ FROM _ WHERE _ = _")],
            schema_text: "create table t (id int, name text)\n".into(),
            nl: "what is the name of t with id 1?".into(),
        };
        let svc = LlmService::new(CHATGPT);
        let req =
            GenerationRequest::for_prompt(&prompt, &gold, &db).prune_quality(1.0).n(5).seed(99);
        let a = svc.complete(&req);
        let b = svc.complete(&req);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.samples.len(), 5);
        assert!(a.prompt_tokens > 0);
        assert!(a.output_tokens > 0);
        assert_eq!(a.support_level, Some(Level::Detail));
    }

    #[test]
    fn context_overflow_drops_demo_support() {
        let db = db();
        let gold = parse("SELECT name FROM t WHERE id = 1").unwrap();
        // A gigantic instruction eats the context; the demo no longer helps.
        let prompt = Prompt {
            instruction: "x ".repeat(5000),
            demonstrations: vec![demo_with_skeleton("SELECT _ FROM _ WHERE _ = _")],
            schema_text: "create table t (id int, name text)\n".into(),
            nl: "q?".into(),
        };
        let svc = LlmService::new(CHATGPT);
        let reg = obs::MetricsRegistry::new(obs::Clock::Virtual);
        let req = GenerationRequest::for_prompt(&prompt, &gold, &db).seed(1).metrics(&reg);
        let resp = svc.complete(&req);
        assert_eq!(resp.support_level, None);
        assert_eq!(resp.prompt_tokens, CONTEXT_LIMIT);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(obs::Counter::ContextOverflows), 1);
        assert_eq!(snap.counter(obs::Counter::LlmCalls), 1);
        assert_eq!(snap.counter(obs::Counter::PromptTokens), resp.prompt_tokens);
        assert_eq!(snap.counter(obs::Counter::OutputTokens), resp.output_tokens);
        assert_eq!(
            snap.stage(obs::Stage::LlmCall).latency.sum,
            resp.prompt_tokens + resp.output_tokens,
            "virtual llm-call span covers billed tokens"
        );
    }

    #[test]
    fn complete_emits_an_llm_call_event() {
        let db = db();
        let gold = parse("SELECT name FROM t WHERE id = 1").unwrap();
        let prompt = Prompt {
            instruction: String::new(),
            demonstrations: vec![demo_with_skeleton("SELECT _ FROM _ WHERE _ = _")],
            schema_text: "create table t (id int, name text)\n".into(),
            nl: "q?".into(),
        };
        let svc = LlmService::new(CHATGPT);
        let rec = obs::EventRecorder::new(3, 16);
        let req = GenerationRequest::for_prompt(&prompt, &gold, &db).n(4).seed(7).events(&rec);
        let resp = svc.complete(&req);
        let sink = obs::EventSink::bounded(4, 16);
        sink.publish(rec);
        let drained = sink.drain();
        assert_eq!(drained.events.len(), 1);
        let e = &drained.events[0];
        assert_eq!((e.example_idx, e.stage, e.kind), (3, "llm-call", "completed"));
        assert!(e.fields.iter().any(|(k, v)| *k == "samples" && *v == obs::EventValue::U64(4)));
        assert!(e
            .fields
            .iter()
            .any(|(k, v)| *k == "prompt_tokens" && *v == obs::EventValue::U64(resp.prompt_tokens)));
        assert!(e
            .fields
            .iter()
            .any(|(k, v)| *k == "support" && *v == obs::EventValue::Str("Detail".into())));
    }

    #[test]
    fn more_samples_cost_more_output_tokens() {
        let db = db();
        let gold = parse("SELECT name FROM t").unwrap();
        let prompt = Prompt {
            instruction: String::new(),
            demonstrations: vec![],
            schema_text: "create table t (id int, name text)\n".into(),
            nl: "q?".into(),
        };
        let svc = LlmService::new(CHATGPT);
        let mk = |n: usize| GenerationRequest::for_prompt(&prompt, &gold, &db).n(n).seed(5);
        let one = svc.complete(&mk(1));
        let ten = svc.complete(&mk(10));
        assert!(ten.output_tokens > one.output_tokens * 5);
    }
}
