//! Prompt assembly: demonstrations + task description, with token accounting.
//!
//! The prompt structure follows §III-A: `P_f = CAT(E', D, X)` — selected
//! demonstrations, then the (possibly pruned) database description, then the NL
//! question. Each demonstration is `CAT(D^e, X^e, Y^e)`.

use crate::tokenizer::count_tokens;
use serde::{Deserialize, Serialize};
use sqlkit::Skeleton;

/// One demonstration included in a prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demonstration {
    /// Pruned schema text of the demonstration's database.
    pub schema_text: String,
    /// Full (unpruned) schema text, used by the "-Schema Pruning" ablation: without
    /// the pruning module, demonstrations ship their whole schemas (§III-A) and eat
    /// the token budget.
    pub full_schema_text: String,
    /// The demonstration's NL question.
    pub nl: String,
    /// The demonstration's gold SQL.
    pub sql: String,
    /// Skeleton of the SQL (the composition knowledge it carries).
    pub skeleton: Skeleton,
}

impl Demonstration {
    /// Token cost of this demonstration in the prompt.
    pub fn token_len(&self) -> u64 {
        count_tokens(&self.schema_text) + count_tokens(&self.nl) + count_tokens(&self.sql) + 6
    }
}

/// A fully assembled prompt.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Prompt {
    /// Leading instruction text (zero-shot approaches put their engineering here).
    pub instruction: String,
    /// Selected demonstrations, in prompt order.
    pub demonstrations: Vec<Demonstration>,
    /// Schema description of the current task (pruned or full).
    pub schema_text: String,
    /// The NL question.
    pub nl: String,
}

impl Prompt {
    /// Render the full prompt text.
    pub fn text(&self) -> String {
        let mut s = String::new();
        if !self.instruction.is_empty() {
            s.push_str(&self.instruction);
            s.push_str("\n\n");
        }
        for d in &self.demonstrations {
            s.push_str(&d.schema_text);
            s.push_str("-- Question: ");
            s.push_str(&d.nl);
            s.push('\n');
            s.push_str(&d.sql);
            s.push_str("\n\n");
        }
        s.push_str(&self.schema_text);
        s.push_str("-- Question: ");
        s.push_str(&self.nl);
        s.push_str("\nSELECT");
        s
    }

    /// Token length of the rendered prompt.
    pub fn token_len(&self) -> u64 {
        count_tokens(&self.text())
    }

    /// Fit the prompt into a token budget by dropping demonstrations from the end
    /// (lowest-priority first, since selection emits them best-first). Returns the
    /// number of demonstrations dropped.
    pub fn fit_to_budget(&mut self, budget: u64) -> usize {
        let mut dropped = 0;
        while self.token_len() > budget && !self.demonstrations.is_empty() {
            self.demonstrations.pop();
            dropped += 1;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(i: usize) -> Demonstration {
        Demonstration {
            schema_text: "create table t (id int, name text)\n".into(),
            full_schema_text: "create table t (id int, name text, extra1 int, extra2 text)\n"
                .into(),
            nl: format!("question number {i} about the table?"),
            sql: "SELECT name FROM t WHERE id = 1".into(),
            skeleton: Skeleton::parse("SELECT _ FROM _ WHERE _ = _"),
        }
    }

    #[test]
    fn text_contains_all_sections_in_order() {
        let p = Prompt {
            instruction: "Write SQLite SQL.".into(),
            demonstrations: vec![demo(1)],
            schema_text: "create table u (a int)\n".into(),
            nl: "how many u are there?".into(),
        };
        let t = p.text();
        let i_instr = t.find("Write SQLite").unwrap();
        let i_demo = t.find("question number 1").unwrap();
        let i_task = t.find("how many u").unwrap();
        assert!(i_instr < i_demo && i_demo < i_task);
        assert!(t.ends_with("SELECT"));
    }

    #[test]
    fn fit_to_budget_drops_tail_demos() {
        let mut p = Prompt {
            instruction: String::new(),
            demonstrations: (0..20).map(demo).collect(),
            schema_text: "create table u (a int)\n".into(),
            nl: "how many u are there?".into(),
        };
        let before = p.token_len();
        let dropped = p.fit_to_budget(before / 3);
        assert!(dropped > 0);
        assert!(p.token_len() <= before / 3);
        // Head demos survive.
        assert_eq!(p.demonstrations.first().unwrap().nl, "question number 0 about the table?");
    }

    #[test]
    fn budget_smaller_than_core_keeps_core() {
        let mut p = Prompt {
            instruction: String::new(),
            demonstrations: vec![demo(0)],
            schema_text: "create table u (a int)\n".into(),
            nl: "q?".into(),
        };
        let dropped = p.fit_to_budget(1);
        assert_eq!(dropped, 1);
        assert!(p.demonstrations.is_empty());
    }

    #[test]
    fn token_len_grows_with_demos() {
        let mut p = Prompt {
            schema_text: "create table u (a int)\n".into(),
            nl: "q?".into(),
            ..Default::default()
        };
        let base = p.token_len();
        p.demonstrations.push(demo(0));
        assert!(p.token_len() > base);
    }
}
