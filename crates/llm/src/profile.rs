//! Model profiles: the calibrated behavioural constants of the simulated LLMs.
//!
//! Every constant is tied to a paper observation it is calibrated against; the
//! calibration run is `repro --table4` / `--table5` with the default seed, and
//! EXPERIMENTS.md records the resulting paper-vs-measured deltas.
//!
//! The central mechanism (§I, §IV-C): an LLM understands the *intent* but picks the
//! logical operator composition from its prior unless a prompt demonstration
//! exhibits the required composition. The probability of writing the correct
//! composition is
//!
//! ```text
//! p = base[hardness]
//!   + demo_boost[best matching abstraction level]
//!   + instruction_quality * instruction_boost
//!   + cot * cot_gain * (reasoning - cot_floor)
//! ```
//!
//! clamped to `[0.02, 0.99]`. When the composition comes out wrong, the writer
//! produces a near-miss: mostly *equivalence-preserving* rewrites (high EX, zero
//! EM — the ChatGPT-SQL signature of Table 1) with some semantics-changing ones.

use serde::{Deserialize, Serialize};
use sqlkit::Level;

/// Behavioural constants of one model tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmProfile {
    /// Display name.
    pub name: &'static str,
    /// P(correct composition from prior alone), indexed by hardness
    /// (easy/medium/hard/extra). Calibrated against zero-shot EM by hardness
    /// (Fig. 9: zero-shot EM ~38-42% overall, collapsing on extra-hard).
    pub base_composition: [f64; 4],
    /// Additive boost when the best prompt demonstration matches the required
    /// skeleton at Detail / Keywords / Structure / Clause level (§IV-C1). Finer
    /// levels teach more; calibrated against the PURPLE-vs-DAIL EM gap (Table 4).
    pub demo_boost: [f64; 4],
    /// Boost per unit of instruction quality (C3-style hand-crafted prompts;
    /// calibrated against C3 vs ChatGPT-SQL EM delta: 43.1 vs 37.9).
    pub instruction_boost: f64,
    /// Chain-of-thought gain, scaled by `reasoning - cot_floor` — negative for weak
    /// reasoners, reproducing DIN-SQL's -17.1 EM collapse on ChatGPT (Table 5).
    pub cot_gain: f64,
    /// Reasoning strength (GPT-4 high, ChatGPT lower).
    pub reasoning: f64,
    /// CoT breaks even at this reasoning level.
    pub cot_floor: f64,
    /// When the composition is wrong, probability that the near-miss is an
    /// equivalence-preserving rewrite (EX survives, EM does not). Calibrated
    /// against the EM≪EX signature of every zero-shot row in Table 1.
    pub equivalent_bias: f64,
    /// P(a schema-linking slip per query) before variant noise; pruned schemas
    /// reduce it (ablation "-Schema Pruning": EM -4.9, EX -1.4).
    pub linking_error: f64,
    /// Multiplier on linking error when the prompt schema is pruned (§IV-A's
    /// "simplifies the inference task").
    pub pruned_linking_factor: f64,
    /// P(wrong constant value) — hurts EX/TS but not EM (values are masked in EM).
    pub value_error: f64,
    /// P(injecting one of the six Table-2 hallucinations per sample).
    pub halluc_rate: f64,
    /// Multiplier on hallucination rate with a pruned schema (fewer confusable
    /// items in context).
    pub pruned_halluc_factor: f64,
    /// Sample-to-sample variance scale (temperature stand-in): extra noise added
    /// to the composition coin per consistency sample.
    pub temperature: f64,
    /// USD per 1k prompt tokens (2023 OpenAI list price for the simulated tier).
    pub usd_per_1k_prompt: f64,
    /// USD per 1k completion tokens.
    pub usd_per_1k_output: f64,
}

impl LlmProfile {
    /// Demo boost for a match at the given abstraction level.
    pub fn boost_for_level(&self, level: Level) -> f64 {
        self.demo_boost[level.index()]
    }
}

/// gpt-3.5-turbo-0613 stand-in.
pub const CHATGPT: LlmProfile = LlmProfile {
    name: "ChatGPT",
    base_composition: [0.68, 0.42, 0.22, 0.08],
    demo_boost: [0.55, 0.33, 0.17, 0.07],
    instruction_boost: 0.02,
    cot_gain: 0.55,
    reasoning: 0.22,
    cot_floor: 0.40,
    equivalent_bias: 0.85,
    linking_error: 0.10,
    pruned_linking_factor: 0.30,
    value_error: 0.075,
    halluc_rate: 0.13,
    pruned_halluc_factor: 0.45,
    temperature: 0.12,
    usd_per_1k_prompt: 0.0015,
    usd_per_1k_output: 0.002,
};

/// gpt-4-0613 stand-in.
pub const GPT4: LlmProfile = LlmProfile {
    name: "GPT4",
    base_composition: [0.74, 0.52, 0.29, 0.12],
    demo_boost: [0.55, 0.36, 0.22, 0.10],
    instruction_boost: 0.03,
    cot_gain: 0.55,
    reasoning: 0.80,
    cot_floor: 0.40,
    equivalent_bias: 0.82,
    linking_error: 0.08,
    pruned_linking_factor: 0.30,
    value_error: 0.05,
    halluc_rate: 0.10,
    pruned_halluc_factor: 0.45,
    temperature: 0.10,
    usd_per_1k_prompt: 0.03,
    usd_per_1k_output: 0.06,
};

/// Profile lookup by name ("ChatGPT" / "GPT4").
pub fn profile_by_name(name: &str) -> Option<LlmProfile> {
    match name {
        "ChatGPT" => Some(CHATGPT),
        "GPT4" => Some(GPT4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the subject
    fn gpt4_dominates_chatgpt_where_the_paper_says_it_does() {
        for i in 0..4 {
            assert!(GPT4.base_composition[i] > CHATGPT.base_composition[i]);
        }
        assert!(GPT4.reasoning > CHATGPT.reasoning);
        assert!(GPT4.halluc_rate < CHATGPT.halluc_rate);
        assert!(GPT4.linking_error < CHATGPT.linking_error);
    }

    #[test]
    fn cot_is_negative_for_weak_reasoners() {
        // DIN-SQL's Table-5 collapse: CoT must hurt ChatGPT and help GPT-4.
        let chatgpt_cot = CHATGPT.cot_gain * (CHATGPT.reasoning - CHATGPT.cot_floor);
        let gpt4_cot = GPT4.cot_gain * (GPT4.reasoning - GPT4.cot_floor);
        assert!(chatgpt_cot < 0.0, "CoT must hurt the weak reasoner");
        assert!(gpt4_cot > 0.15);
    }

    #[test]
    fn boosts_decay_with_abstraction_level() {
        for p in [CHATGPT, GPT4] {
            for w in p.demo_boost.windows(2) {
                assert!(w[0] > w[1], "finer levels must teach more");
            }
            assert!(p.boost_for_level(Level::Detail) > p.boost_for_level(Level::Clause));
        }
    }

    #[test]
    fn profile_lookup() {
        assert_eq!(profile_by_name("ChatGPT").unwrap().name, "ChatGPT");
        assert_eq!(profile_by_name("GPT4").unwrap().name, "GPT4");
        assert!(profile_by_name("PaLM").is_none());
    }
}
