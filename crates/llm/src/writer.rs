//! The SQL-writing backend of the simulated LLM: starts from the understood
//! intent (the gold AST — see DESIGN.md's substitution table), chooses an operator
//! composition (gold or a near-miss per the composition coin), then layers in the
//! error processes every real LLM exhibits: schema-linking slips, wrong constants,
//! and the six hallucination categories of Table 2.

use crate::profile::LlmProfile;
use crate::rewrites::near_miss;
use engine::{Database, Value};
use rand::prelude::*;
use rand::rngs::StdRng;
use sqlkit::ast::*;
use sqlkit::Query;

/// Produce one SQL sample.
#[allow(clippy::too_many_arguments)]
pub fn write_sample(
    profile: &LlmProfile,
    gold: &Query,
    db: &Database,
    linking_noise: f64,
    schema_pruned: bool,
    composition_ok: bool,
    rng: &mut StdRng,
) -> String {
    let mut q = if composition_ok {
        gold.clone()
    } else {
        near_miss(gold, db, profile.equivalent_bias, rng).unwrap_or_else(|| gold.clone())
    };
    let link_factor = if schema_pruned { profile.pruned_linking_factor } else { 1.0 };
    let p_link = ((profile.linking_error + linking_noise) * link_factor).min(0.9);
    if rng.random_bool(p_link) {
        inject_linking_slip(&mut q, db, rng);
    }
    if rng.random_bool(profile.value_error) {
        inject_value_error(&mut q, db, rng);
    }
    let p_h = profile.halluc_rate * if schema_pruned { profile.pruned_halluc_factor } else { 1.0 };
    if rng.random_bool(p_h) {
        inject_hallucination(&mut q, db, rng);
    }
    q.to_string()
}

/// Resolve which schema table a column reference binds to in this query.
fn owning_table(q: &Query, col: &ColumnRef, db: &Database) -> Option<usize> {
    if let Some(t) = &col.table {
        // Alias or table name.
        for tr in q.core.from.table_refs() {
            if let TableRef::Named { name, alias } = tr {
                let binding = alias.as_deref().unwrap_or(name);
                if binding.eq_ignore_ascii_case(t) {
                    return db.schema.table_index(name);
                }
            }
        }
        return db.schema.table_index(t);
    }
    for tr in q.core.from.table_refs() {
        if let TableRef::Named { name, .. } = tr {
            if let Some(ti) = db.schema.table_index(name) {
                if db.schema.tables[ti].column_index(&col.column).is_some() {
                    return Some(ti);
                }
            }
        }
    }
    None
}

/// Swap one referenced column for a sibling column of the same table — an
/// executable but semantically wrong schema-linking slip.
pub fn inject_linking_slip(q: &mut Query, db: &Database, rng: &mut StdRng) -> bool {
    // Prefer slipping a select column; fall back to a where column.
    let candidates: Vec<usize> = (0..q.core.items.len()).collect();
    for idx in candidates {
        let ValUnit::Column(c) = &q.core.items[idx].expr.unit else {
            continue;
        };
        let Some(ti) = owning_table(q, c, db) else {
            continue;
        };
        let table = &db.schema.tables[ti];
        let current = c.column.to_ascii_lowercase();
        let siblings: Vec<&str> = table
            .columns
            .iter()
            .map(|col| col.name.as_str())
            .filter(|n| !n.eq_ignore_ascii_case(&current))
            .collect();
        if let Some(new_name) = siblings.choose(rng) {
            if let ValUnit::Column(c) = &mut q.core.items[idx].expr.unit {
                c.column = new_name.to_string();
            }
            return true;
        }
    }
    false
}

/// Perturb one constant in the WHERE clause: wrong value, right shape.
pub fn inject_value_error(q: &mut Query, db: &Database, rng: &mut StdRng) -> bool {
    let Some(w) = &mut q.core.where_clause else {
        return false;
    };
    fn has_literal(c: &Condition) -> bool {
        match c {
            Condition::And(l, r) | Condition::Or(l, r) => has_literal(l) || has_literal(r),
            Condition::Pred(p) => matches!(p.right, Operand::Literal(_)),
        }
    }
    fn first_literal_pred(c: &mut Condition) -> Option<&mut Predicate> {
        match c {
            Condition::And(l, r) | Condition::Or(l, r) => {
                if has_literal(l) {
                    first_literal_pred(l)
                } else {
                    first_literal_pred(r)
                }
            }
            Condition::Pred(p) => {
                if matches!(p.right, Operand::Literal(_)) {
                    Some(p)
                } else {
                    None
                }
            }
        }
    }
    let Some(pred) = first_literal_pred(w) else {
        return false;
    };
    let Operand::Literal(lit) = &mut pred.right else {
        return false;
    };
    *lit = match lit.clone() {
        Literal::Int(i) => Literal::Int(i + if rng.random_bool(0.5) { 1 } else { -1 }),
        Literal::Float(x) => Literal::Float(x * 1.1 + 1.0),
        Literal::Str(s) => {
            // Pick a different observed value for the same column when possible.
            let mut replacement = None;
            if let ValUnit::Column(c) = &pred.left.unit {
                'outer: for (ti, t) in db.schema.tables.iter().enumerate() {
                    if let Some(ci) = t.column_index(&c.column) {
                        for v in db.sample_values(ti, ci, 8) {
                            if let Value::Text(other) = v {
                                if other != s {
                                    replacement = Some(other);
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
            Literal::Str(replacement.unwrap_or_else(|| format!("{s}x")))
        }
        Literal::Null => Literal::Null,
    };
    true
}

/// Inject one of the six Table-2 hallucinations, trying applicable injectors in
/// random order. Returns the category label, or `None` when the query shape admits
/// no injection.
pub fn inject_hallucination(
    q: &mut Query,
    db: &Database,
    rng: &mut StdRng,
) -> Option<&'static str> {
    type Injector = fn(&mut Query, &Database, &mut StdRng) -> Option<&'static str>;
    let mut injectors: Vec<Injector> = vec![
        inject_function_halluc,
        inject_agg_multi,
        inject_schema_col,
        inject_wrong_qualifier,
        inject_ambiguity,
        inject_missing_table,
    ];
    injectors.shuffle(rng);
    for inj in injectors {
        if let Some(label) = inj(q, db, rng) {
            return Some(label);
        }
    }
    None
}

/// `SELECT name ...` → `SELECT CONCAT(name, ' ', other) ...` (Function-Hallucination).
pub fn inject_function_halluc(
    q: &mut Query,
    db: &Database,
    _rng: &mut StdRng,
) -> Option<&'static str> {
    for idx in 0..q.core.items.len() {
        let item = &q.core.items[idx];
        let ValUnit::Column(c) = &item.expr.unit else {
            continue;
        };
        if item.expr.func.is_some() {
            continue;
        }
        let ti = owning_table(q, c, db)?;
        let table = &db.schema.tables[ti];
        let other = table
            .columns
            .iter()
            .find(|col| {
                col.ty == sqlkit::ColumnType::Text && !col.name.eq_ignore_ascii_case(&c.column)
            })?
            .name
            .clone();
        let col = c.clone();
        q.core.items[idx].expr.unit = ValUnit::Func {
            name: "CONCAT".into(),
            args: vec![
                ValUnit::Column(col),
                ValUnit::Literal(Literal::Str(" ".into())),
                ValUnit::Column(ColumnRef::bare(other)),
            ],
        };
        return Some("function-hallucination");
    }
    None
}

/// `COUNT(DISTINCT a)` → `COUNT(DISTINCT a, b)` (Aggregation-Hallucination).
pub fn inject_agg_multi(q: &mut Query, db: &Database, _rng: &mut StdRng) -> Option<&'static str> {
    // Clone the column list up-front to appease the borrow checker.
    for idx in 0..q.core.items.len() {
        let item = &q.core.items[idx];
        if item.expr.func != Some(AggFunc::Count) || matches!(item.expr.unit, ValUnit::Star) {
            continue;
        }
        let ValUnit::Column(c) = &item.expr.unit else {
            continue;
        };
        let ti = owning_table(q, c, db)?;
        let other = db.schema.tables[ti]
            .columns
            .iter()
            .find(|col| !col.name.eq_ignore_ascii_case(&c.column))?
            .name
            .clone();
        q.core.items[idx].expr.extra_args.push(ValUnit::Column(ColumnRef::bare(other)));
        return Some("aggregation-hallucination");
    }
    None
}

/// Mangle a column name into a near-miss identifier (Schema-Hallucination).
pub fn inject_schema_col(q: &mut Query, db: &Database, rng: &mut StdRng) -> Option<&'static str> {
    for item in &mut q.core.items {
        let ValUnit::Column(c) = &mut item.expr.unit else {
            continue;
        };
        let mangled = if rng.random_bool(0.5) {
            format!("{}s", c.column)
        } else {
            format!("{}_value", c.column)
        };
        // A near-miss that lexes as a keyword (`a` → `as`) would break the
        // parse, not schema linking; the `_value` suffix never collides.
        let mangled = if sqlkit::lexer::KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(&mangled)) {
            format!("{}_value", c.column)
        } else {
            mangled
        };
        // Only inject when the mangled name really does not exist.
        if db.schema.tables.iter().any(|t| t.column_index(&mangled).is_some()) {
            continue;
        }
        c.column = mangled;
        return Some("schema-hallucination");
    }
    None
}

/// In a join, move a column to the wrong alias (Table-Column-Mismatch).
pub fn inject_wrong_qualifier(
    q: &mut Query,
    db: &Database,
    _rng: &mut StdRng,
) -> Option<&'static str> {
    if q.core.from.joins.is_empty() {
        return None;
    }
    let bindings: Vec<String> = q
        .core
        .from
        .table_refs()
        .iter()
        .filter_map(|tr| tr.binding_name().map(str::to_string))
        .collect();
    if bindings.len() < 2 {
        return None;
    }
    // Table names for checking "breaks": map binding -> schema table.
    let table_of = |b: &str| -> Option<usize> {
        for tr in q.core.from.table_refs() {
            if let TableRef::Named { name, alias } = tr {
                if alias.as_deref().unwrap_or(name).eq_ignore_ascii_case(b) {
                    return db.schema.table_index(name);
                }
            }
        }
        None
    };
    for item in &mut q.core.items {
        let ValUnit::Column(c) = &mut item.expr.unit else {
            continue;
        };
        let Some(current) = c.table.clone() else {
            continue;
        };
        for other in &bindings {
            if other.eq_ignore_ascii_case(&current) {
                continue;
            }
            if let Some(ti) = table_of(other) {
                if db.schema.tables[ti].column_index(&c.column).is_none() {
                    c.table = Some(other.clone());
                    return Some("table-column-mismatch");
                }
            }
        }
    }
    None
}

/// Drop the qualifier from a column present in several joined tables
/// (Column-Ambiguity).
pub fn inject_ambiguity(q: &mut Query, db: &Database, _rng: &mut StdRng) -> Option<&'static str> {
    if q.core.from.joins.is_empty() {
        return None;
    }
    let from_tables: Vec<usize> = q
        .core
        .from
        .table_refs()
        .iter()
        .filter_map(|tr| match tr {
            TableRef::Named { name, .. } => db.schema.table_index(name),
            _ => None,
        })
        .collect();
    let ambiguous = |col: &str| {
        from_tables.iter().filter(|ti| db.schema.tables[**ti].column_index(col).is_some()).count()
            > 1
    };
    for item in &mut q.core.items {
        let ValUnit::Column(c) = &mut item.expr.unit else {
            continue;
        };
        if c.table.is_some() && ambiguous(&c.column) {
            c.table = None;
            return Some("column-ambiguity");
        }
    }
    // Join keys are the usual ambiguity victims.
    for j in &mut q.core.from.joins {
        for (l, r) in &mut j.on {
            for c in [&mut *l, &mut *r] {
                if c.table.is_some() && ambiguous(&c.column) {
                    c.table = None;
                    return Some("column-ambiguity");
                }
            }
        }
    }
    None
}

/// Remove a join but keep table-qualified references to the removed table
/// (Missing-Table). The adaption fixer re-joins it via the FK path, recovering the
/// original query.
pub fn inject_missing_table(
    q: &mut Query,
    db: &Database,
    _rng: &mut StdRng,
) -> Option<&'static str> {
    if q.core.from.joins.len() != 1 {
        return None;
    }
    let join = q.core.from.joins[0].clone();
    let TableRef::Named { name: removed_name, alias: removed_alias } = &join.table else {
        return None;
    };
    let removed_binding = removed_alias.as_deref().unwrap_or(removed_name).to_string();
    // Requalify references to the removed binding with the real table name, so the
    // engine reports MissingTable rather than UnknownTable.
    let rename = |c: &mut ColumnRef| {
        if c.table.as_deref().map(|t| t.eq_ignore_ascii_case(&removed_binding)) == Some(true) {
            c.table = Some(removed_name.clone());
        }
    };
    let mut touched = false;
    if let Some(w) = &mut q.core.where_clause {
        fn walk(c: &mut Condition, f: &impl Fn(&mut ColumnRef), touched: &mut bool) {
            match c {
                Condition::And(l, r) | Condition::Or(l, r) => {
                    walk(l, f, touched);
                    walk(r, f, touched);
                }
                Condition::Pred(p) => {
                    if let ValUnit::Column(col) = &mut p.left.unit {
                        f(col);
                        *touched = true;
                    }
                }
            }
        }
        walk(w, &rename, &mut touched);
    }
    if !touched {
        return None;
    }
    // A WHERE predicate must actually reference the removed table, otherwise the
    // result is valid SQL and not a hallucination.
    let references_removed = q
        .core
        .where_clause
        .as_ref()
        .map(|w| {
            w.flatten().iter().any(|(p, _)| {
                matches!(&p.left.unit, ValUnit::Column(c)
                    if c.table.as_deref().map(|t| t.eq_ignore_ascii_case(removed_name)) == Some(true))
            })
        })
        .unwrap_or(false);
    if !references_removed {
        return None;
    }
    let _ = db;
    q.core.from.joins.clear();
    // Select columns qualified with the *kept* alias lose their alias binding when
    // the first table keeps its alias; leave them — they still resolve.
    Some("missing-table")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlkit::{parse, Column, ColumnId, ColumnType, ForeignKey, Schema, Table};

    fn db() -> Database {
        let mut s = Schema::new("tvdb");
        s.tables.push(Table {
            name: "tv_channel".into(),
            display: "tv channel".into(),
            columns: vec![
                Column::new("id", ColumnType::Int),
                Column::new("series_name", ColumnType::Text),
                Column::new("country", ColumnType::Text),
            ],
            primary_key: Some(0),
        });
        s.tables.push(Table {
            name: "cartoon".into(),
            display: "cartoon".into(),
            columns: vec![
                Column::new("id", ColumnType::Int),
                Column::new("title", ColumnType::Text),
                Column::new("written_by", ColumnType::Text),
                Column::new("channel", ColumnType::Int),
            ],
            primary_key: Some(0),
        });
        s.foreign_keys.push(ForeignKey {
            from: ColumnId { table: 1, column: 3 },
            to: ColumnId { table: 0, column: 0 },
        });
        let mut d = Database::empty(s);
        d.insert(0, vec![Value::Int(1), Value::Text("Sky".into()), Value::Text("Italy".into())]);
        d.insert(0, vec![Value::Int(2), Value::Text("Rai".into()), Value::Text("USA".into())]);
        d.insert(
            1,
            vec![
                Value::Int(1),
                Value::Text("Ball".into()),
                Value::Text("Todd".into()),
                Value::Int(1),
            ],
        );
        d
    }

    #[test]
    fn linking_slip_swaps_a_select_column() {
        let db = db();
        let mut q = parse("SELECT country FROM tv_channel WHERE id = 1").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(inject_linking_slip(&mut q, &db, &mut rng));
        let text = q.to_string();
        assert!(!text.starts_with("SELECT country"), "{text}");
        // Still executes.
        engine::execute(&db, &q).unwrap();
    }

    #[test]
    fn value_error_changes_constant_only() {
        let db = db();
        let mut q = parse("SELECT country FROM tv_channel WHERE series_name = 'Sky'").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(inject_value_error(&mut q, &db, &mut rng));
        let text = q.to_string();
        assert!(!text.contains("'Sky'"), "{text}");
        engine::execute(&db, &q).unwrap();
    }

    #[test]
    fn each_hallucination_category_produces_its_engine_error() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(3);

        let mut q = parse("SELECT series_name FROM tv_channel").unwrap();
        assert_eq!(inject_function_halluc(&mut q, &db, &mut rng), Some("function-hallucination"));
        assert_eq!(engine::execute(&db, &q).unwrap_err().category(), "function-hallucination");

        let mut q = parse("SELECT COUNT(DISTINCT series_name) FROM tv_channel").unwrap();
        assert_eq!(inject_agg_multi(&mut q, &db, &mut rng), Some("aggregation-hallucination"));
        assert_eq!(engine::execute(&db, &q).unwrap_err().category(), "aggregation-hallucination");

        let mut q = parse("SELECT country FROM tv_channel").unwrap();
        assert_eq!(inject_schema_col(&mut q, &db, &mut rng), Some("schema-hallucination"));
        assert_eq!(engine::execute(&db, &q).unwrap_err().category(), "schema-hallucination");

        let mut q = parse(
            "SELECT T2.title FROM cartoon AS T2 JOIN tv_channel AS T1 ON T2.channel = T1.id \
             WHERE T1.country = 'Italy'",
        )
        .unwrap();
        // Move `title` to T1 (tv_channel lacks it).
        let r = inject_wrong_qualifier(&mut q, &db, &mut rng);
        assert_eq!(r, Some("table-column-mismatch"));
        assert_eq!(engine::execute(&db, &q).unwrap_err().category(), "table-column-mismatch");

        let mut q =
            parse("SELECT T1.id FROM tv_channel AS T1 JOIN cartoon AS T2 ON T1.id = T2.channel")
                .unwrap();
        assert_eq!(inject_ambiguity(&mut q, &db, &mut rng), Some("column-ambiguity"));
        assert_eq!(engine::execute(&db, &q).unwrap_err().category(), "column-ambiguity");

        let mut q = parse(
            "SELECT T1.country FROM tv_channel AS T1 JOIN cartoon AS T2 ON T1.id = T2.channel \
             WHERE T2.written_by = 'Todd'",
        )
        .unwrap();
        assert_eq!(inject_missing_table(&mut q, &db, &mut rng), Some("missing-table"));
        assert_eq!(engine::execute(&db, &q).unwrap_err().category(), "missing-table");
    }

    #[test]
    fn write_sample_with_perfect_settings_returns_gold() {
        let db = db();
        let gold = parse("SELECT country FROM tv_channel WHERE id = 1").unwrap();
        let profile = crate::profile::LlmProfile {
            linking_error: 0.0,
            value_error: 0.0,
            halluc_rate: 0.0,
            ..crate::profile::CHATGPT
        };
        let mut rng = StdRng::seed_from_u64(4);
        let sql = write_sample(&profile, &gold, &db, 0.0, true, true, &mut rng);
        assert_eq!(sql, gold.to_string());
    }

    #[test]
    fn write_sample_wrong_composition_differs_from_gold() {
        let db = db();
        let gold = parse(
            "SELECT country FROM tv_channel EXCEPT SELECT T1.country FROM tv_channel AS T1 JOIN \
             cartoon AS T2 ON T1.id = T2.channel WHERE T2.written_by = 'Todd'",
        )
        .unwrap();
        let profile = crate::profile::LlmProfile {
            linking_error: 0.0,
            value_error: 0.0,
            halluc_rate: 0.0,
            ..crate::profile::CHATGPT
        };
        let mut rng = StdRng::seed_from_u64(5);
        let sql = write_sample(&profile, &gold, &db, 0.0, true, false, &mut rng);
        assert_ne!(sql, gold.to_string());
        sqlkit::parse(&sql).unwrap();
    }
}
