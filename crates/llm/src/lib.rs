//! # purple-llm
//!
//! The simulated LLM service of the PURPLE reproduction: model profiles
//! (ChatGPT / GPT-4 tiers), an approximate tokenizer with the 4,096-token context
//! limit, prompt assembly with budget fitting, the near-miss rewrite library, the
//! error-injecting SQL writer (Table 2's six hallucination categories), and the
//! generation service whose *composition prior + demonstration boost* mechanism is
//! the paper's causal claim made executable. See DESIGN.md for the substitution
//! argument.

#![warn(missing_docs)]

pub mod ledger;
pub mod profile;
pub mod prompt;
pub mod rewrites;
pub mod service;
pub mod tokenizer;
pub mod writer;

pub use ledger::{CostLedger, Totals};
pub use profile::{profile_by_name, LlmProfile, CHATGPT, GPT4};
pub use prompt::{Demonstration, Prompt};
pub use service::{GenerationRequest, GenerationResponse, LlmService};
pub use tokenizer::{count_tokens, CONTEXT_LIMIT};
