//! Approximate tokenizer for budget accounting.
//!
//! The paper's budget experiments (Fig. 11) are denominated in OpenAI BPE tokens.
//! We approximate with the standard rule of thumb (≈4 characters per token,
//! floored by the word count), which is accurate enough for relative budget
//! comparisons — the only thing the experiments need.

/// Approximate number of tokens in a string.
pub fn count_tokens(s: &str) -> u64 {
    let chars = s.chars().count() as u64;
    let words = s.split_whitespace().count() as u64;
    (chars / 4).max(words)
}

/// The context-window limit shared by the simulated models (gpt-3.5-turbo-0613's
/// 4,096 tokens; the paper's Fig. 11 marks configurations beyond it as N/A).
pub const CONTEXT_LIMIT: u64 = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_with_length() {
        assert_eq!(count_tokens(""), 0);
        let short = count_tokens("SELECT country FROM tv_channel");
        let long = count_tokens(
            "SELECT country FROM tv_channel WHERE id NOT IN (SELECT channel FROM cartoon)",
        );
        assert!(long > short);
        assert!(short >= 4);
    }

    #[test]
    fn word_floor_applies_to_terse_text() {
        // Eleven 1-char words: char/4 would be ~5, but 11 words floor it.
        assert_eq!(count_tokens("a b c d e f g h i j k"), 11);
    }
}
