//! Cost accounting across LLM calls: cumulative token counts and a dollar
//! estimate at the 2023-era OpenAI prices the paper's budget discussion (§V-D)
//! implicitly uses. Thread-safe so parallel evaluations can share one ledger.

use crate::profile::LlmProfile;
use parking_lot::Mutex;
use std::sync::Arc;

/// Cumulative totals recorded by a [`CostLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Number of API calls.
    pub calls: u64,
    /// Total prompt tokens billed.
    pub prompt_tokens: u64,
    /// Total completion tokens billed.
    pub output_tokens: u64,
}

impl Totals {
    /// Dollar estimate at a profile's per-1k-token prices.
    pub fn cost_usd(&self, profile: &LlmProfile) -> f64 {
        (self.prompt_tokens as f64 / 1000.0) * profile.usd_per_1k_prompt
            + (self.output_tokens as f64 / 1000.0) * profile.usd_per_1k_output
    }
}

/// A shared, thread-safe token/cost accumulator.
///
/// All three fields of [`Totals`] live behind one mutex, so every operation is
/// atomic with respect to the others: a [`CostLedger::record`] concurrent with
/// [`CostLedger::reset`] either lands entirely before the reset (and is wiped)
/// or entirely after (and survives whole) — `totals` can never observe a call
/// counted without its tokens. This matches the `obs::MetricsRegistry`
/// convention; `evaluate_par` workers rely on it when sharing one ledger.
#[derive(Debug, Default)]
pub struct CostLedger {
    inner: Mutex<Totals>,
}

impl CostLedger {
    /// A fresh shared ledger.
    pub fn shared() -> Arc<CostLedger> {
        Arc::new(CostLedger::default())
    }

    /// Record one call.
    pub fn record(&self, prompt_tokens: u64, output_tokens: u64) {
        let mut t = self.inner.lock();
        t.calls += 1;
        t.prompt_tokens += prompt_tokens;
        t.output_tokens += output_tokens;
    }

    /// Snapshot the totals.
    pub fn totals(&self) -> Totals {
        *self.inner.lock()
    }

    /// Reset to zero, atomically with respect to concurrent [`CostLedger::record`]
    /// calls (no partially-recorded call can straddle the reset).
    pub fn reset(&self) {
        *self.inner.lock() = Totals::default();
    }

    /// Atomically snapshot the totals and reset them, so no call recorded
    /// between the two steps is lost or double-counted.
    pub fn drain(&self) -> Totals {
        let mut t = self.inner.lock();
        std::mem::take(&mut *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CHATGPT, GPT4};

    #[test]
    fn records_and_totals() {
        let l = CostLedger::shared();
        l.record(1000, 500);
        l.record(2000, 100);
        let t = l.totals();
        assert_eq!(t.calls, 2);
        assert_eq!(t.prompt_tokens, 3000);
        assert_eq!(t.output_tokens, 600);
        l.reset();
        assert_eq!(l.totals(), Totals::default());
    }

    #[test]
    fn gpt4_is_an_order_of_magnitude_pricier() {
        let t = Totals { calls: 1, prompt_tokens: 3000, output_tokens: 1000 };
        let cheap = t.cost_usd(&CHATGPT);
        let pricey = t.cost_usd(&GPT4);
        assert!(pricey > cheap * 10.0, "{pricey} vs {cheap}");
        // ChatGPT at the paper's default budget: ~fractions of a cent per query.
        assert!(cheap < 0.01);
    }

    #[test]
    fn reset_is_atomic_with_respect_to_concurrent_records() {
        // Writers record calls with a fixed tokens-per-call ratio while a
        // reaper drains concurrently. Atomicity means every observed snapshot
        // (and the final residue) keeps the ratio intact — a torn record or a
        // lost update would break calls*[10,1] == [prompt,output] — and the
        // reaped + residual totals must account for every call exactly once.
        const WRITERS: u64 = 4;
        const CALLS: u64 = 5_000;
        let ledger = CostLedger::shared();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut reaped = Totals::default();
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..WRITERS)
                .map(|_| {
                    let ledger = ledger.clone();
                    scope.spawn(move || {
                        for _ in 0..CALLS {
                            ledger.record(10, 1);
                        }
                    })
                })
                .collect();
            let reaper = scope.spawn(|| {
                let mut acc = Totals::default();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let t = ledger.drain();
                    assert_eq!(t.prompt_tokens, t.calls * 10, "torn record observed");
                    assert_eq!(t.output_tokens, t.calls, "torn record observed");
                    acc.calls += t.calls;
                    acc.prompt_tokens += t.prompt_tokens;
                    acc.output_tokens += t.output_tokens;
                }
                acc
            });
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            reaped = reaper.join().unwrap();
        });
        let rest = ledger.totals();
        assert_eq!(reaped.calls + rest.calls, WRITERS * CALLS);
        assert_eq!(reaped.prompt_tokens + rest.prompt_tokens, WRITERS * CALLS * 10);
        assert_eq!(reaped.output_tokens + rest.output_tokens, WRITERS * CALLS);
    }

    #[test]
    fn ledger_is_shareable_across_threads() {
        let l = CostLedger::shared();
        crossbeam_scope(&l);
        assert_eq!(l.totals().calls, 8);

        fn crossbeam_scope(l: &Arc<CostLedger>) {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let l = l.clone();
                    std::thread::spawn(move || l.record(10, 1))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
