//! Near-miss rewrites: how the simulated LLM writes a *different* operator
//! composition for the same intent.
//!
//! Two families, matching the paper's Fig. 1 taxonomy:
//!
//! * **Equivalence-preserving** rewrites express the same semantics with different
//!   operators (`EXCEPT` ↔ `NOT IN`+join, `IN`-subquery ↔ `JOIN`, `ORDER BY..LIMIT
//!   1` ↔ `MAX` subquery, `BETWEEN` ↔ two comparisons, `UNION` ↔ `OR`). They
//!   usually keep Execution Match while always breaking Exact-Set Match — the
//!   EM ≪ EX signature of every LLM row in Table 1. ("Usually": duplicates and
//!   ties make some of them near-equivalent, which is exactly the DIN-SQL
//!   de-duplication failure of Fig. 1.)
//! * **Corrupting** rewrites change the semantics (dropped conjuncts, flipped
//!   operators, wrong aggregates...), breaking both metrics most of the time.

use rand::prelude::*;
use rand::rngs::StdRng;
use sqlkit::ast::*;

/// All applicable equivalence-preserving rewrites of a query.
pub fn equivalent_rewrites(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    out.extend(except_to_not_in(q));
    out.extend(not_in_to_except(q));
    out.extend(in_to_join(q));
    out.extend(join_to_in(q));
    out.extend(order_limit_to_extremum(q));
    out.extend(union_to_or(q));
    out.extend(add_distinct(q));
    // Exact equivalences are the most common LLM form differences ("the SQL is
    // right, just phrased differently"): weight them up by listing them thrice.
    for _ in 0..3 {
        out.extend(between_to_cmp(q));
        out.extend(shift_integer_boundary(q));
        out.extend(count_star_to_count_pk(q));
    }
    out
}

/// A redundant-but-harmless join the schema's FK integrity makes lossless
/// (`SELECT c FROM child` → `child JOIN parent ON fk = pk`): the classic LLM
/// "unnecessary JOIN" that Exact-Set Match punishes and execution does not. Needs
/// schema knowledge, hence a separate entry point used by the writer.
pub fn add_redundant_join(q: &Query, db: &engine::Database) -> Option<Query> {
    if q.compound.is_some()
        || q.core.from.len() != 1
        || !q.core.group_by.is_empty()
        || q.core
            .items
            .iter()
            .any(|i| matches!(i.expr.unit, ValUnit::Star) && i.expr.func.is_none())
    {
        return None;
    }
    let TableRef::Named { name, alias: None } = &q.core.from.first else {
        return None;
    };
    let ti = db.schema.table_index(name)?;
    let (other, fk) = db.schema.fk_neighbors(ti).into_iter().next()?;
    // The generator's FK columns are non-null, so the inner join is lossless.
    let (my_end, other_end) = if fk.from.table == ti { (fk.from, fk.to) } else { (fk.to, fk.from) };
    let mut out = q.clone();
    // Qualify the query's bare column references with the original table, the way a
    // careful LLM does when it joins — otherwise shared column names (id, name)
    // would turn ambiguous.
    let table_name = name.clone();
    qualify_query_columns(&mut out, &table_name);
    out.core.from.joins.push(Join {
        table: TableRef::named(db.schema.tables[other].name.clone()),
        on: vec![(
            ColumnRef::qualified(table_name, db.schema.column(my_end).name.clone()),
            ColumnRef::qualified(
                db.schema.tables[other].name.clone(),
                db.schema.column(other_end).name.clone(),
            ),
        )],
    });
    Some(out)
}

/// Qualify every bare column reference in the outer core with a table name
/// (select list, conditions, group/order keys; subqueries are left alone).
fn qualify_query_columns(q: &mut Query, table: &str) {
    fn unit(v: &mut ValUnit, table: &str) {
        match v {
            ValUnit::Column(c) => {
                if c.table.is_none() {
                    c.table = Some(table.to_string());
                }
            }
            ValUnit::Arith { left, right, .. } => {
                unit(left, table);
                unit(right, table);
            }
            ValUnit::Func { args, .. } => {
                for a in args {
                    unit(a, table);
                }
            }
            ValUnit::Star | ValUnit::Literal(_) => {}
        }
    }
    fn cond(c: &mut Condition, table: &str) {
        match c {
            Condition::And(l, r) | Condition::Or(l, r) => {
                cond(l, table);
                cond(r, table);
            }
            Condition::Pred(p) => {
                unit(&mut p.left.unit, table);
                if let Operand::Column(col) = &mut p.right {
                    if col.table.is_none() {
                        col.table = Some(table.to_string());
                    }
                }
            }
        }
    }
    for item in &mut q.core.items {
        unit(&mut item.expr.unit, table);
    }
    if let Some(w) = &mut q.core.where_clause {
        cond(w, table);
    }
    for g in &mut q.core.group_by {
        if g.table.is_none() {
            g.table = Some(table.to_string());
        }
    }
    if let Some(h) = &mut q.core.having {
        cond(h, table);
    }
    for o in &mut q.core.order_by {
        unit(&mut o.expr.unit, table);
    }
}

/// `a >= 5` ↔ `a > 4` on integer literals: exactly equivalent, EM-breaking.
fn shift_integer_boundary(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    let w = out.core.where_clause.as_mut()?;
    fn shift(c: &mut Condition) -> bool {
        match c {
            Condition::And(l, r) | Condition::Or(l, r) => shift(l) || shift(r),
            Condition::Pred(p) => {
                let Operand::Literal(Literal::Int(v)) = &mut p.right else {
                    return false;
                };
                match p.op {
                    CmpOp::Ge => {
                        p.op = CmpOp::Gt;
                        *v -= 1;
                        true
                    }
                    CmpOp::Gt => {
                        p.op = CmpOp::Ge;
                        *v += 1;
                        true
                    }
                    CmpOp::Le => {
                        p.op = CmpOp::Lt;
                        *v += 1;
                        true
                    }
                    CmpOp::Lt => {
                        p.op = CmpOp::Le;
                        *v -= 1;
                        true
                    }
                    _ => false,
                }
            }
        }
    }
    if shift(w) {
        Some(out)
    } else {
        None
    }
}

/// `COUNT(*)` → `COUNT(<first select column>)`-style head-column count: exact when
/// the counted column is non-null (primary keys are). We use the bare first column
/// of the query when one exists.
fn count_star_to_count_pk(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    // Count the group key when grouping, else fall back to `id`, the universal
    // primary key of the generated schemas.
    let col = out.core.group_by.first().cloned().unwrap_or_else(|| ColumnRef::bare("id"));
    let item =
        out.core.items.iter_mut().find(|i| {
            i.expr.func == Some(AggFunc::Count) && matches!(i.expr.unit, ValUnit::Star)
        })?;
    item.expr.unit = ValUnit::Column(col);
    Some(out)
}

/// All applicable corrupting rewrites of a query.
pub fn corrupting_rewrites(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    out.extend(drop_where_conjunct(q));
    out.extend(and_to_or(q));
    out.extend(flip_cmp(q));
    out.extend(wrong_agg(q));
    out.extend(toggle_count_distinct(q));
    out.extend(flip_order_dir(q));
    out.extend(bump_limit(q));
    out.extend(drop_having(q));
    out.extend(drop_compound(q));
    out.extend(drop_group_by(q));
    out.extend(except_to_wrong_not_in(q));
    out
}

/// Pick a near-miss: an equivalence-preserving rewrite with probability
/// `equivalent_bias` (falling back across families when one is empty), else a
/// corrupting one. `None` when the query admits no rewrite at all.
pub fn near_miss(
    q: &Query,
    db: &engine::Database,
    equivalent_bias: f64,
    rng: &mut StdRng,
) -> Option<Query> {
    let mut eq = equivalent_rewrites(q);
    for _ in 0..3 {
        eq.extend(add_redundant_join(q, db));
    }
    let bad = corrupting_rewrites(q);
    let use_eq = rng.random_bool(equivalent_bias);
    if use_eq && !eq.is_empty() {
        // The LLM's alternative phrasings are *usually* semantically faithful: its
        // training distribution pairs these forms, so when it reaches for NOT IN
        // instead of EXCEPT it mostly does so in contexts where they coincide.
        // Model that by preferring a result-preserving candidate (when the data
        // admits one) with high probability; the residual mass covers the Fig.-1
        // de-duplication traps.
        if rng.random_bool(0.9) {
            if let Ok(gold_rs) = engine::execute(db, q) {
                let ordered = engine::order_matters(q);
                let preserving: Vec<&Query> = eq
                    .iter()
                    .filter(|m| {
                        engine::execute(db, m)
                            .map(|rs| rs.same_result(&gold_rs, ordered))
                            .unwrap_or(false)
                    })
                    .collect();
                if let Some(pick) = preserving.choose(rng) {
                    return Some((*pick).clone());
                }
            }
        }
        return eq.choose(rng).cloned();
    }
    let pool = if !bad.is_empty() {
        &bad
    } else if !eq.is_empty() {
        &eq
    } else {
        return None;
    };
    pool.choose(rng).cloned()
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn strip_qualifiers(c: &Condition) -> Condition {
    match c {
        Condition::And(l, r) => {
            Condition::And(Box::new(strip_qualifiers(l)), Box::new(strip_qualifiers(r)))
        }
        Condition::Or(l, r) => {
            Condition::Or(Box::new(strip_qualifiers(l)), Box::new(strip_qualifiers(r)))
        }
        Condition::Pred(p) => {
            let mut p = p.clone();
            if let ValUnit::Column(ref mut col) = p.left.unit {
                col.table = None;
            }
            Condition::Pred(p)
        }
    }
}

fn qualify(c: &Condition, alias: &str) -> Condition {
    match c {
        Condition::And(l, r) => {
            Condition::And(Box::new(qualify(l, alias)), Box::new(qualify(r, alias)))
        }
        Condition::Or(l, r) => {
            Condition::Or(Box::new(qualify(l, alias)), Box::new(qualify(r, alias)))
        }
        Condition::Pred(p) => {
            let mut p = p.clone();
            if let ValUnit::Column(ref mut col) = p.left.unit {
                if col.table.is_none() {
                    col.table = Some(alias.to_string());
                }
            }
            Condition::Pred(p)
        }
    }
}

/// Matches the generator's join shape: `FROM a AS T1 JOIN b AS T2 ON T1.x = T2.y`.
struct JoinShape {
    t1_name: String,
    t2_name: String,
    t1_col: String,
    t2_col: String,
}

fn match_join(core: &SelectCore) -> Option<JoinShape> {
    if core.from.joins.len() != 1 {
        return None;
    }
    let TableRef::Named { name: t1_name, .. } = &core.from.first else {
        return None;
    };
    let join = &core.from.joins[0];
    let TableRef::Named { name: t2_name, .. } = &join.table else {
        return None;
    };
    if join.on.len() != 1 {
        return None;
    }
    let (l, r) = &join.on[0];
    let t1_binding = core.from.first.binding_name()?.to_ascii_lowercase();
    let (t1_ref, t2_ref) = if l.table.as_deref().map(|t| t.to_ascii_lowercase()).as_deref()
        == Some(t1_binding.as_str())
    {
        (l, r)
    } else {
        (r, l)
    };
    Some(JoinShape {
        t1_name: t1_name.clone(),
        t2_name: t2_name.clone(),
        t1_col: t1_ref.column.clone(),
        t2_col: t2_ref.column.clone(),
    })
}

// ---------------------------------------------------------------------------
// equivalence-preserving rewrites
// ---------------------------------------------------------------------------

/// `SELECT c FROM t EXCEPT SELECT T1.c FROM t T1 JOIN u T2 ON k = f WHERE P`
/// → `SELECT c FROM t WHERE k NOT IN (SELECT f FROM u WHERE P)`.
fn except_to_not_in(q: &Query) -> Option<Query> {
    let (SetOp::Except, rhs) = (&q.compound.as_ref()?.0, &q.compound.as_ref()?.1) else {
        return None;
    };
    if rhs.compound.is_some() {
        return None;
    }
    let shape = match_join(&rhs.core)?;
    let TableRef::Named { name: left_t, .. } = &q.core.from.first else {
        return None;
    };
    if !shape.t1_name.eq_ignore_ascii_case(left_t) || !q.core.from.joins.is_empty() {
        return None;
    }
    let inner_where = rhs.core.where_clause.as_ref().map(strip_qualifiers);
    let mut inner = SelectCore::simple(
        AggExpr::unit(ValUnit::Column(ColumnRef::bare(shape.t2_col))),
        shape.t2_name,
    );
    inner.where_clause = inner_where;
    let mut core = q.core.clone();
    let pred = Condition::Pred(Predicate {
        left: AggExpr::unit(ValUnit::Column(ColumnRef::bare(shape.t1_col))),
        op: CmpOp::NotIn,
        right: Operand::Subquery(Box::new(Query::single(inner))),
        right2: None,
    });
    core.where_clause = Some(match core.where_clause.take() {
        Some(w) => Condition::And(Box::new(w), Box::new(pred)),
        None => pred,
    });
    Some(Query::single(core))
}

/// The reverse: `WHERE k NOT IN (SELECT f FROM u WHERE P)` → `EXCEPT` + join.
fn not_in_to_except(q: &Query) -> Option<Query> {
    if q.compound.is_some() || q.core.from.len() != 1 {
        return None;
    }
    let w = q.core.where_clause.as_ref()?;
    let Condition::Pred(p) = w else { return None };
    if p.op != CmpOp::NotIn {
        return None;
    }
    let Operand::Subquery(sub) = &p.right else {
        return None;
    };
    if sub.compound.is_some() || sub.core.from.len() != 1 {
        return None;
    }
    let ValUnit::Column(outer_key) = &p.left.unit else {
        return None;
    };
    let ValUnit::Column(inner_key) = &sub.core.items.first()?.expr.unit else {
        return None;
    };
    let TableRef::Named { name: t1, .. } = &q.core.from.first else {
        return None;
    };
    let TableRef::Named { name: t2, .. } = &sub.core.from.first else {
        return None;
    };
    let mut left = q.core.clone();
    left.where_clause = None;
    let right = SelectCore {
        distinct: false,
        items: q
            .core
            .items
            .iter()
            .map(|i| {
                let mut i = i.clone();
                if let ValUnit::Column(ref mut c) = i.expr.unit {
                    c.table = Some("T1".into());
                }
                i
            })
            .collect(),
        from: FromClause {
            first: TableRef::aliased(t1.clone(), "T1"),
            joins: vec![Join {
                table: TableRef::aliased(t2.clone(), "T2"),
                on: vec![(
                    ColumnRef::qualified("T1", outer_key.column.clone()),
                    ColumnRef::qualified("T2", inner_key.column.clone()),
                )],
            }],
        },
        where_clause: sub.core.where_clause.as_ref().map(|w| qualify(w, "T2")),
        group_by: vec![],
        having: None,
        order_by: vec![],
        limit: None,
    };
    Some(Query { core: left, compound: Some((SetOp::Except, Box::new(Query::single(right)))) })
}

/// `WHERE k IN (SELECT f FROM u WHERE P)` → join form.
fn in_to_join(q: &Query) -> Option<Query> {
    if q.compound.is_some() || q.core.from.len() != 1 {
        return None;
    }
    let w = q.core.where_clause.as_ref()?;
    let Condition::Pred(p) = w else { return None };
    if p.op != CmpOp::In {
        return None;
    }
    let Operand::Subquery(sub) = &p.right else {
        return None;
    };
    if sub.compound.is_some() || sub.core.from.len() != 1 {
        return None;
    }
    let ValUnit::Column(outer_key) = &p.left.unit else {
        return None;
    };
    let ValUnit::Column(inner_key) = &sub.core.items.first()?.expr.unit else {
        return None;
    };
    let TableRef::Named { name: t1, .. } = &q.core.from.first else {
        return None;
    };
    let TableRef::Named { name: t2, .. } = &sub.core.from.first else {
        return None;
    };
    let core = SelectCore {
        // DISTINCT compensates for join fan-out — the LLM sometimes remembers it,
        // modeled by keeping the original distinct flag (near-equivalence).
        distinct: q.core.distinct,
        items: q
            .core
            .items
            .iter()
            .map(|i| {
                let mut i = i.clone();
                if let ValUnit::Column(ref mut c) = i.expr.unit {
                    c.table = Some("T1".into());
                }
                i
            })
            .collect(),
        from: FromClause {
            first: TableRef::aliased(t1.clone(), "T1"),
            joins: vec![Join {
                table: TableRef::aliased(t2.clone(), "T2"),
                on: vec![(
                    ColumnRef::qualified("T1", outer_key.column.clone()),
                    ColumnRef::qualified("T2", inner_key.column.clone()),
                )],
            }],
        },
        where_clause: sub.core.where_clause.as_ref().map(|w| qualify(w, "T2")),
        group_by: q.core.group_by.clone(),
        having: q.core.having.clone(),
        order_by: q.core.order_by.clone(),
        limit: q.core.limit,
    };
    Some(Query::single(core))
}

/// Join form → `IN` subquery, when the select list only touches the first table.
fn join_to_in(q: &Query) -> Option<Query> {
    if q.compound.is_some() || !q.core.group_by.is_empty() || !q.core.order_by.is_empty() {
        return None;
    }
    let shape = match_join(&q.core)?;
    let t1_binding = q.core.from.first.binding_name()?.to_ascii_lowercase();
    // Select list must reference only T1.
    for i in &q.core.items {
        match &i.expr.unit {
            ValUnit::Column(c) => {
                let t = c.table.as_deref()?.to_ascii_lowercase();
                if t != t1_binding {
                    return None;
                }
            }
            _ => return None,
        }
    }
    // WHERE must reference only T2 (the generator's join_select shape).
    let t2_binding = q.core.from.joins[0].table.binding_name()?.to_ascii_lowercase();
    if let Some(w) = &q.core.where_clause {
        for (p, _) in w.flatten() {
            let ValUnit::Column(c) = &p.left.unit else {
                return None;
            };
            if c.table.as_deref().map(|t| t.to_ascii_lowercase()) != Some(t2_binding.clone()) {
                return None;
            }
        }
    }
    let mut inner = SelectCore::simple(
        AggExpr::unit(ValUnit::Column(ColumnRef::bare(shape.t2_col))),
        shape.t2_name,
    );
    inner.where_clause = q.core.where_clause.as_ref().map(strip_qualifiers);
    let core = SelectCore {
        distinct: q.core.distinct,
        items: q
            .core
            .items
            .iter()
            .map(|i| {
                let mut i = i.clone();
                if let ValUnit::Column(ref mut c) = i.expr.unit {
                    c.table = None;
                }
                i
            })
            .collect(),
        from: FromClause::table(shape.t1_name),
        where_clause: Some(Condition::Pred(Predicate {
            left: AggExpr::unit(ValUnit::Column(ColumnRef::bare(shape.t1_col))),
            op: CmpOp::In,
            right: Operand::Subquery(Box::new(Query::single(inner))),
            right2: None,
        })),
        group_by: vec![],
        having: None,
        order_by: vec![],
        limit: q.core.limit,
    };
    Some(Query::single(core))
}

/// `ORDER BY col DESC LIMIT 1` → `WHERE col = (SELECT MAX(col) ...)`.
fn order_limit_to_extremum(q: &Query) -> Option<Query> {
    if q.compound.is_some() || !q.core.group_by.is_empty() || q.core.limit != Some(1) {
        return None;
    }
    if q.core.order_by.len() != 1 || q.core.from.len() != 1 {
        return None;
    }
    let o = &q.core.order_by[0];
    if o.expr.func.is_some() {
        return None;
    }
    let ValUnit::Column(key) = &o.expr.unit else {
        return None;
    };
    let TableRef::Named { name, .. } = &q.core.from.first else {
        return None;
    };
    let func = if o.dir == OrderDir::Desc { AggFunc::Max } else { AggFunc::Min };
    let mut inner =
        SelectCore::simple(AggExpr::agg(func, ValUnit::Column(key.clone())), name.clone());
    inner.where_clause = q.core.where_clause.clone();
    let mut core = q.core.clone();
    core.order_by.clear();
    core.limit = None;
    let pred = Condition::Pred(Predicate {
        left: AggExpr::unit(ValUnit::Column(key.clone())),
        op: CmpOp::Eq,
        right: Operand::Subquery(Box::new(Query::single(inner))),
        right2: None,
    });
    core.where_clause = Some(match core.where_clause.take() {
        Some(w) => Condition::And(Box::new(w), Box::new(pred)),
        None => pred,
    });
    Some(Query::single(core))
}

/// `BETWEEN a AND b` → `>= a AND <= b` (exact equivalence).
fn between_to_cmp(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    let w = out.core.where_clause.as_mut()?;
    fn rewrite(c: &mut Condition) -> bool {
        match c {
            Condition::And(l, r) | Condition::Or(l, r) => rewrite(l) || rewrite(r),
            Condition::Pred(p) if p.op == CmpOp::Between => {
                let lo = p.right.clone();
                let hi = p.right2.take().expect("BETWEEN has an upper bound");
                let left = p.left.clone();
                *c = Condition::And(
                    Box::new(Condition::Pred(Predicate {
                        left: left.clone(),
                        op: CmpOp::Ge,
                        right: lo,
                        right2: None,
                    })),
                    Box::new(Condition::Pred(Predicate {
                        left,
                        op: CmpOp::Le,
                        right: hi,
                        right2: None,
                    })),
                );
                true
            }
            Condition::Pred(_) => false,
        }
    }
    if rewrite(w) {
        Some(out)
    } else {
        None
    }
}

/// `UNION` of two filters on the same table → single core with `OR`.
fn union_to_or(q: &Query) -> Option<Query> {
    let (op, rhs) = q.compound.as_ref()?;
    if *op != SetOp::Union || rhs.compound.is_some() {
        return None;
    }
    if q.core.from.len() != 1 || rhs.core.from.len() != 1 {
        return None;
    }
    let (TableRef::Named { name: a, .. }, TableRef::Named { name: b, .. }) =
        (&q.core.from.first, &rhs.core.from.first)
    else {
        return None;
    };
    if !a.eq_ignore_ascii_case(b) || q.core.items != rhs.core.items {
        return None;
    }
    let (Some(w1), Some(w2)) = (&q.core.where_clause, &rhs.core.where_clause) else {
        return None;
    };
    let mut core = q.core.clone();
    core.where_clause = Some(Condition::Or(Box::new(w1.clone()), Box::new(w2.clone())));
    // UNION de-duplicates; the equivalent single-core form needs DISTINCT. The
    // simulated LLM remembers that (this is the *equivalent* family).
    core.distinct = true;
    Some(Query::single(core))
}

/// Add DISTINCT to a plain single-column select (near-equivalent when the data
/// happens to be duplicate-free; the DIN-SQL mistake of Fig. 1 in reverse).
fn add_distinct(q: &Query) -> Option<Query> {
    if q.core.distinct
        || q.compound.is_some()
        || q.core.items.len() != 1
        || q.core.items[0].expr.func.is_some()
    {
        return None;
    }
    let mut out = q.clone();
    out.core.distinct = true;
    Some(out)
}

// ---------------------------------------------------------------------------
// corrupting rewrites
// ---------------------------------------------------------------------------

fn drop_where_conjunct(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    match out.core.where_clause.take() {
        Some(Condition::And(l, _)) => {
            out.core.where_clause = Some(*l);
            Some(out)
        }
        Some(Condition::Pred(_)) if q.core.from.len() > 1 || q.compound.is_some() => {
            // Dropping the only predicate is too destructive for simple queries but
            // plausible for complex ones.
            out.core.where_clause = None;
            Some(out)
        }
        _ => None,
    }
}

fn and_to_or(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    let w = out.core.where_clause.as_mut()?;
    if let Condition::And(l, r) = w.clone() {
        *w = Condition::Or(l, r);
        return Some(out);
    }
    None
}

fn flip_cmp(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    let w = out.core.where_clause.as_mut()?;
    fn flip(c: &mut Condition) -> bool {
        match c {
            Condition::And(l, r) | Condition::Or(l, r) => flip(l) || flip(r),
            Condition::Pred(p) => {
                let new = match p.op {
                    CmpOp::Gt => CmpOp::Ge,
                    CmpOp::Ge => CmpOp::Gt,
                    CmpOp::Lt => CmpOp::Le,
                    CmpOp::Le => CmpOp::Lt,
                    CmpOp::Eq => CmpOp::Ne,
                    _ => return false,
                };
                p.op = new;
                true
            }
        }
    }
    if flip(w) {
        Some(out)
    } else {
        None
    }
}

fn wrong_agg(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    let item = out.core.items.iter_mut().find(|i| i.expr.func.is_some())?;
    let f = item.expr.func.expect("checked");
    item.expr.func = Some(match f {
        AggFunc::Count => AggFunc::Sum,
        AggFunc::Sum => AggFunc::Count,
        AggFunc::Avg => AggFunc::Sum,
        AggFunc::Max => AggFunc::Min,
        AggFunc::Min => AggFunc::Max,
    });
    if matches!(item.expr.unit, ValUnit::Star) {
        // SUM(*) is not a thing; keep COUNT for star.
        return None;
    }
    Some(out)
}

fn toggle_count_distinct(q: &Query) -> Option<Query> {
    let mut out = q.clone();
    let item =
        out.core.items.iter_mut().find(|i| {
            i.expr.func == Some(AggFunc::Count) && !matches!(i.expr.unit, ValUnit::Star)
        })?;
    item.expr.distinct = !item.expr.distinct;
    Some(out)
}

fn flip_order_dir(q: &Query) -> Option<Query> {
    if q.core.order_by.is_empty() {
        return None;
    }
    let mut out = q.clone();
    for o in &mut out.core.order_by {
        o.dir = match o.dir {
            OrderDir::Asc => OrderDir::Desc,
            OrderDir::Desc => OrderDir::Asc,
        };
    }
    Some(out)
}

fn bump_limit(q: &Query) -> Option<Query> {
    let n = q.core.limit?;
    let mut out = q.clone();
    out.core.limit = Some(if n == 1 { 3 } else { n - 1 });
    Some(out)
}

fn drop_having(q: &Query) -> Option<Query> {
    q.core.having.as_ref()?;
    let mut out = q.clone();
    out.core.having = None;
    Some(out)
}

fn drop_compound(q: &Query) -> Option<Query> {
    q.compound.as_ref()?;
    let mut out = q.clone();
    out.compound = None;
    Some(out)
}

fn drop_group_by(q: &Query) -> Option<Query> {
    if q.core.group_by.is_empty() {
        return None;
    }
    let mut out = q.clone();
    out.core.group_by.clear();
    out.core.having = None;
    Some(out)
}

/// The C3 failure of Fig. 1: `EXCEPT` replaced by `NOT IN` over the *wrong* column
/// (the select column instead of the key).
fn except_to_wrong_not_in(q: &Query) -> Option<Query> {
    let (op, rhs) = q.compound.as_ref()?;
    if *op != SetOp::Except || rhs.compound.is_some() {
        return None;
    }
    let shape = match_join(&rhs.core)?;
    let TableRef::Named { name: left_t, .. } = &q.core.from.first else {
        return None;
    };
    if !shape.t1_name.eq_ignore_ascii_case(left_t) {
        return None;
    }
    // Compare the *select* column against the child fk values — type-confused and
    // semantically wrong, but executable.
    let ValUnit::Column(sel) = &q.core.items.first()?.expr.unit else {
        return None;
    };
    let mut inner = SelectCore::simple(
        AggExpr::unit(ValUnit::Column(ColumnRef::bare(shape.t2_col))),
        shape.t2_name,
    );
    inner.where_clause = rhs.core.where_clause.as_ref().map(strip_qualifiers);
    let mut core = q.core.clone();
    core.where_clause = Some(Condition::Pred(Predicate {
        left: AggExpr::unit(ValUnit::Column(sel.clone())),
        op: CmpOp::NotIn,
        right: Operand::Subquery(Box::new(Query::single(inner))),
        right2: None,
    }));
    Some(Query::single(core))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlkit::parse;

    fn empty_db() -> engine::Database {
        engine::Database::empty(sqlkit::Schema::new("empty"))
    }

    const FIG1_GOLD: &str = "SELECT Country FROM tv_channel EXCEPT SELECT T1.Country FROM \
                             tv_channel AS T1 JOIN cartoon AS T2 ON T1.id = T2.channel WHERE \
                             T2.written_by = 'Todd Casey'";

    #[test]
    fn except_to_not_in_produces_fig1_confusion() {
        let q = parse(FIG1_GOLD).unwrap();
        let r = except_to_not_in(&q).expect("rewrite applies");
        let text = r.to_string();
        assert!(text.contains("NOT IN"), "{text}");
        assert!(!text.contains("EXCEPT"), "{text}");
        // Must re-parse.
        sqlkit::parse(&text).unwrap();
    }

    #[test]
    fn not_in_to_except_roundtrips_shape() {
        let q = parse(
            "SELECT country FROM tv_channel WHERE id NOT IN (SELECT channel FROM cartoon WHERE \
             written_by = 'x')",
        )
        .unwrap();
        let r = not_in_to_except(&q).expect("rewrite applies");
        assert!(r.to_string().contains("EXCEPT"));
        sqlkit::parse(&r.to_string()).unwrap();
    }

    #[test]
    fn in_join_rewrites_both_ways() {
        let q = parse(
            "SELECT name FROM singer WHERE id IN (SELECT singer_id FROM singer_in_concert WHERE \
             concert_id = 2)",
        )
        .unwrap();
        let j = in_to_join(&q).expect("in->join applies");
        assert!(j.to_string().contains("JOIN"));
        let back = join_to_in(&j).expect("join->in applies");
        assert!(back.to_string().contains(" IN ("));
    }

    #[test]
    fn order_limit_to_extremum_builds_scalar_subquery() {
        let q = parse("SELECT name FROM singer ORDER BY age DESC LIMIT 1").unwrap();
        let r = order_limit_to_extremum(&q).expect("applies");
        let text = r.to_string();
        assert!(text.contains("MAX(age)"), "{text}");
        assert!(!text.contains("LIMIT"), "{text}");
        // ASC flavors use MIN.
        let q = parse("SELECT name FROM singer ORDER BY age ASC LIMIT 1").unwrap();
        assert!(order_limit_to_extremum(&q).unwrap().to_string().contains("MIN(age)"));
    }

    #[test]
    fn between_rewrite_is_exact() {
        let q = parse("SELECT a FROM t WHERE b BETWEEN 1 AND 5").unwrap();
        let r = between_to_cmp(&q).expect("applies");
        let text = r.to_string();
        assert!(text.contains(">= 1") && text.contains("<= 5"), "{text}");
    }

    #[test]
    fn union_to_or_merges_same_table_filters() {
        let q = parse("SELECT a FROM t WHERE b = 1 UNION SELECT a FROM t WHERE c = 2").unwrap();
        let r = union_to_or(&q).expect("applies");
        let text = r.to_string();
        assert!(text.contains("OR"), "{text}");
        assert!(text.contains("DISTINCT"), "{text}");
        // Different tables must not merge.
        let q2 = parse("SELECT a FROM t WHERE b = 1 UNION SELECT a FROM u WHERE c = 2").unwrap();
        assert!(union_to_or(&q2).is_none());
    }

    #[test]
    fn corrupting_rewrites_apply_where_shaped() {
        let q = parse("SELECT a FROM t WHERE b = 1 AND c > 2 ORDER BY d DESC LIMIT 1").unwrap();
        assert!(drop_where_conjunct(&q).is_some());
        assert!(and_to_or(&q).is_some());
        assert!(flip_cmp(&q).is_some());
        assert!(flip_order_dir(&q).is_some());
        assert!(bump_limit(&q).is_some());
        assert!(wrong_agg(&q).is_none());
        let q2 = parse("SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 1").unwrap();
        assert!(wrong_agg(&q2).is_some());
        assert!(toggle_count_distinct(&q2).is_some());
        assert!(drop_having(&q2).is_some());
        assert!(drop_group_by(&q2).is_some());
    }

    #[test]
    fn every_rewrite_output_reparses() {
        let mut rng = StdRng::seed_from_u64(3);
        for sql in [
            FIG1_GOLD,
            "SELECT name FROM singer WHERE id IN (SELECT singer_id FROM singer_in_concert)",
            "SELECT a FROM t WHERE b BETWEEN 1 AND 5 ORDER BY c ASC LIMIT 2",
            "SELECT COUNT(DISTINCT a) FROM t WHERE b = 1 AND c = 2",
            "SELECT a FROM t WHERE b = 1 UNION SELECT a FROM t WHERE b = 2",
            "SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.x = T2.y WHERE T2.b = 1",
        ] {
            let q = parse(sql).unwrap();
            for r in equivalent_rewrites(&q).iter().chain(corrupting_rewrites(&q).iter()) {
                let text = r.to_string();
                sqlkit::parse(&text)
                    .unwrap_or_else(|e| panic!("rewrite of `{sql}` unparseable: `{text}`: {e}"));
                assert_ne!(r, &q, "rewrite of `{sql}` is identical");
            }
            // near_miss returns something for all these shapes.
            assert!(near_miss(&q, &empty_db(), 0.5, &mut rng).is_some());
        }
    }

    #[test]
    fn near_miss_respects_bias_direction() {
        let q = parse(FIG1_GOLD).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let db = empty_db();
        let mut eq_count = 0;
        for _ in 0..200 {
            let m = near_miss(&q, &db, 0.9, &mut rng).unwrap();
            if equivalent_rewrites(&q).contains(&m) {
                eq_count += 1;
            }
        }
        assert!(eq_count > 120, "high bias should mostly pick equivalent rewrites: {eq_count}");
    }
}
