//! Test-Suite (TS) accuracy — a reimplementation of Zhong, Yu & Klein's distilled
//! test suites (EMNLP 2020), which the paper uses as its third metric (§V-A2).
//!
//! For each benchmark database we fuzz many random instances of the same schema,
//! then *distill*: keep only instances that distinguish some gold query from one of
//! its near-miss mutants ("neighbor queries"). TS accuracy then requires the
//! prediction to match the gold query's results on **every** instance in the suite,
//! which strips away the coincidental-equality false positives of single-database EX.

use engine::{execute, order_matters, Database, ExecSession, Value};
use rand::prelude::*;
use rand::rngs::StdRng;
use sqlkit::ast::*;
use sqlkit::{ColumnType, Query};

/// A distilled test suite for one database: the original instance plus
/// distinguishing fuzzed instances.
#[derive(Debug, Clone)]
pub struct TestSuite {
    /// Database instances sharing the schema.
    pub databases: Vec<Database>,
}

/// Configuration for suite construction.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Random instances to fuzz before distillation (the paper's pipeline uses a
    /// 100-fold augmentation; we default lower for wall-clock and let the bench
    /// harness raise it).
    pub candidates: usize,
    /// Maximum instances kept (including the original).
    pub max_kept: usize,
    /// Gold queries sampled to drive distillation.
    pub probe_queries: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig { candidates: 24, max_kept: 8, probe_queries: 24 }
    }
}

/// Build a distilled suite for `db`, using `gold_queries` from the benchmark as
/// distillation probes.
pub fn build_suite(
    db: &Database,
    gold_queries: &[&Query],
    cfg: SuiteConfig,
    seed: u64,
) -> TestSuite {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept = vec![db.clone()];

    // Sample probes and their neighbors.
    let mut probes: Vec<&Query> = gold_queries.to_vec();
    probes.shuffle(&mut rng);
    probes.truncate(cfg.probe_queries);
    let neighbors: Vec<(usize, Query)> = probes
        .iter()
        .enumerate()
        .flat_map(|(i, q)| mutate(q, &mut rng).into_iter().map(move |m| (i, m)))
        .collect();

    // A neighbor is "alive" while no kept instance distinguishes it from its gold.
    let mut alive: Vec<bool> =
        neighbors.iter().map(|(i, m)| !distinguishes(db, probes[*i], m)).collect();

    for c in 0..cfg.candidates {
        if kept.len() >= cfg.max_kept || !alive.iter().any(|a| *a) {
            break;
        }
        let candidate = fuzz_instance(db, &mut rng, c);
        // Instances where some gold probe errors are useless: gold must stay valid.
        if probes.iter().any(|q| execute(&candidate, q).is_err()) {
            continue;
        }
        let mut killed_any = false;
        for (k, (i, m)) in neighbors.iter().enumerate() {
            if alive[k] && distinguishes(&candidate, probes[*i], m) {
                alive[k] = false;
                killed_any = true;
            }
        }
        if killed_any {
            kept.push(candidate);
        }
    }
    TestSuite { databases: kept }
}

/// TS accuracy check: the prediction must produce the gold result on every instance
/// of the suite (gold executing successfully on all of them by construction).
pub fn ts_match(pred: &Query, gold: &Query, suite: &TestSuite) -> bool {
    let ordered = order_matters(gold);
    for db in &suite.databases {
        let Ok(gold_rs) = execute(db, gold) else {
            continue;
        };
        let Ok(pred_rs) = execute(db, pred) else {
            return false;
        };
        if !pred_rs.same_result(&gold_rs, ordered) {
            return false;
        }
    }
    true
}

/// TS on a raw predicted string.
pub fn ts_match_str(pred_sql: &str, gold: &Query, suite: &TestSuite) -> bool {
    match sqlkit::parse(pred_sql) {
        Ok(pred) => ts_match(&pred, gold, suite),
        Err(_) => false,
    }
}

/// [`ts_match`] through an execution session: every suite instance is bound to
/// the session, so gold executions (one per instance) are memoized across all
/// predictions scored against the same suite. Returns exactly what
/// [`ts_match`] returns for the same inputs.
pub fn ts_match_with(session: &ExecSession, pred: &Query, gold: &Query, suite: &TestSuite) -> bool {
    let ordered = order_matters(gold);
    for db in &suite.databases {
        let sdb = session.bind(db);
        let Ok(gold_rs) = sdb.execute(gold) else {
            continue;
        };
        let Ok(pred_rs) = sdb.execute(pred) else {
            return false;
        };
        if !pred_rs.same_result(&gold_rs, ordered) {
            return false;
        }
    }
    true
}

/// [`ts_match_str`] through an execution session; the parse result is memoized
/// alongside plans and results.
pub fn ts_match_str_with(
    session: &ExecSession,
    pred_sql: &str,
    gold: &Query,
    suite: &TestSuite,
) -> bool {
    match session.parse(pred_sql) {
        Some(pred) => ts_match_with(session, &pred, gold, suite),
        None => false,
    }
}

fn distinguishes(db: &Database, gold: &Query, neighbor: &Query) -> bool {
    let ordered = order_matters(gold);
    match (execute(db, gold), execute(db, neighbor)) {
        (Ok(g), Ok(n)) => !g.same_result(&n, ordered),
        (Ok(_), Err(_)) => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Fuzzing
// ---------------------------------------------------------------------------

/// Produce a random instance of `db`'s schema: row counts and values re-sampled
/// from the observed per-column domains (plus fresh values), with referential
/// integrity maintained along the schema's foreign keys.
pub fn fuzz_instance(db: &Database, rng: &mut StdRng, salt: usize) -> Database {
    let schema = db.schema.clone();
    let mut out = Database::empty(schema);
    let _ = salt;
    // Pre-draw row counts.
    let counts: Vec<usize> = db
        .rows
        .iter()
        .map(|rows| {
            let base = rows.len().max(2);
            rng.random_range(1..=base + base / 2)
        })
        .collect();
    for ti in 0..db.schema.tables.len() {
        let table = &out.schema.tables[ti].clone();
        for row_index in 0..counts[ti] {
            let mut row: Vec<Value> = Vec::with_capacity(table.columns.len());
            for ci in 0..table.columns.len() {
                // Foreign key columns reference the (sequential) parent ids.
                if let Some(fk) = out
                    .schema
                    .foreign_keys
                    .iter()
                    .find(|f| f.from.table == ti && f.from.column == ci)
                {
                    let parent_count = counts[fk.to.table] as i64;
                    row.push(Value::Int(rng.random_range(1..=parent_count.max(1))));
                    continue;
                }
                if out.schema.tables[ti].primary_key == Some(ci) {
                    row.push(Value::Int(row_index as i64 + 1));
                    continue;
                }
                row.push(fuzz_value(db, ti, ci, rng));
            }
            out.insert(ti, row);
        }
    }
    out
}

fn fuzz_value(db: &Database, ti: usize, ci: usize, rng: &mut StdRng) -> Value {
    let observed: Vec<&Value> =
        db.rows[ti].iter().map(|r| &r[ci]).filter(|v| !v.is_null()).collect();
    let ty = db.schema.tables[ti].columns[ci].ty;
    // Mostly resample observed values (so equality predicates keep selecting), with
    // occasional novel values and NULLs to perturb boundaries.
    let roll: f64 = rng.random();
    if roll < 0.70 {
        if let Some(v) = observed.choose(rng) {
            return (*v).clone();
        }
    }
    if roll > 0.96 {
        return Value::Null;
    }
    match ty {
        ColumnType::Int => {
            let (lo, hi) = observed
                .iter()
                .filter_map(|v| v.as_f64())
                .fold((0.0f64, 10.0f64), |(lo, hi), x| (lo.min(x), hi.max(x)));
            Value::Int(rng.random_range(lo as i64..=(hi as i64 + 2)))
        }
        ColumnType::Float => {
            let (lo, hi) = observed
                .iter()
                .filter_map(|v| v.as_f64())
                .fold((0.0f64, 10.0f64), |(lo, hi), x| (lo.min(x), hi.max(x)));
            Value::Float((rng.random_range(lo..hi + 1.0) * 100.0).round() / 100.0)
        }
        ColumnType::Text => match observed.choose(rng) {
            Some(v) => (*v).clone(),
            None => Value::Text(format!("v{}", rng.random_range(0..100))),
        },
    }
}

// ---------------------------------------------------------------------------
// Neighbor-query mutations
// ---------------------------------------------------------------------------

/// Generate near-miss mutants of a query: the "neighbor queries" against which the
/// suite is distilled.
pub fn mutate(q: &Query, rng: &mut StdRng) -> Vec<Query> {
    let mut out = Vec::new();
    // Toggle SELECT DISTINCT.
    {
        let mut m = q.clone();
        m.core.distinct = !m.core.distinct;
        out.push(m);
    }
    // Flip a comparison operator in WHERE.
    if let Some(w) = &q.core.where_clause {
        let preds = w.num_predicates();
        for k in 0..preds.min(2) {
            let mut m = q.clone();
            if let Some(cond) = &mut m.core.where_clause {
                let mut idx = 0;
                flip_pred(cond, k, &mut idx);
            }
            out.push(m);
        }
        // Drop WHERE entirely.
        let mut m = q.clone();
        m.core.where_clause = None;
        out.push(m);
    }
    // Reverse ORDER BY direction / drop LIMIT.
    if !q.core.order_by.is_empty() {
        let mut m = q.clone();
        for o in &mut m.core.order_by {
            o.dir = match o.dir {
                OrderDir::Asc => OrderDir::Desc,
                OrderDir::Desc => OrderDir::Asc,
            };
        }
        out.push(m);
    }
    if q.core.limit.is_some() {
        let mut m = q.clone();
        m.core.limit = m.core.limit.map(|n| n + 1);
        out.push(m);
    }
    // Swap the set operator / replace EXCEPT with NOT IN-free plain select.
    if let Some((op, _)) = &q.compound {
        let mut m = q.clone();
        let new_op = match op {
            SetOp::Except => SetOp::Intersect,
            SetOp::Intersect => SetOp::Union,
            SetOp::Union => SetOp::Intersect,
        };
        m.compound.as_mut().expect("checked").0 = new_op;
        out.push(m);
        let mut m2 = q.clone();
        m2.compound = None;
        out.push(m2);
    }
    // Change aggregate function on the first aggregated select item.
    if let Some(pos) = q.core.items.iter().position(|i| i.expr.func.is_some()) {
        let mut m = q.clone();
        let f = m.core.items[pos].expr.func.expect("checked");
        m.core.items[pos].expr.func = Some(match f {
            AggFunc::Count => AggFunc::Max,
            AggFunc::Max => AggFunc::Min,
            AggFunc::Min => AggFunc::Max,
            AggFunc::Sum => AggFunc::Avg,
            AggFunc::Avg => AggFunc::Sum,
        });
        out.push(m);
    }
    out.shuffle(rng);
    out.truncate(4);
    out
}

fn flip_pred(c: &mut Condition, target: usize, idx: &mut usize) {
    match c {
        Condition::And(l, r) | Condition::Or(l, r) => {
            flip_pred(l, target, idx);
            flip_pred(r, target, idx);
        }
        Condition::Pred(p) => {
            if *idx == target {
                p.op = match p.op {
                    CmpOp::Eq => CmpOp::Ne,
                    CmpOp::Ne => CmpOp::Eq,
                    CmpOp::Lt => CmpOp::Ge,
                    CmpOp::Le => CmpOp::Gt,
                    CmpOp::Gt => CmpOp::Le,
                    CmpOp::Ge => CmpOp::Lt,
                    CmpOp::Like => CmpOp::NotLike,
                    CmpOp::NotLike => CmpOp::Like,
                    CmpOp::In => CmpOp::NotIn,
                    CmpOp::NotIn => CmpOp::In,
                    CmpOp::Between => CmpOp::Between,
                };
            }
            *idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::{parse, Column, Schema, Table};

    fn db() -> Database {
        let mut s = Schema::new("d");
        s.tables.push(Table {
            name: "t".into(),
            display: "t".into(),
            columns: vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("grp", ColumnType::Text),
            ],
            primary_key: Some(0),
        });
        let mut db = Database::empty(s);
        for (i, (n, g)) in [("a", "x"), ("b", "x"), ("c", "y")].iter().enumerate() {
            db.insert(
                0,
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Text(n.to_string()),
                    Value::Text(g.to_string()),
                ],
            );
        }
        db
    }

    #[test]
    fn suite_distinguishes_coincidental_ex_matches() {
        let db = db();
        let gold = parse("SELECT name FROM t WHERE id < 3").unwrap();
        let coincident = parse("SELECT name FROM t WHERE grp = 'x'").unwrap();
        // EX-equal on the original instance:
        assert!(crate::metrics::ex_match(&coincident, &gold, &db));
        // The suite (driven by the gold itself as probe) should separate them with
        // high probability.
        let suite = build_suite(
            &db,
            &[&gold, &coincident],
            SuiteConfig { candidates: 60, max_kept: 12, probe_queries: 8 },
            1234,
        );
        assert!(suite.databases.len() > 1, "distillation kept no fuzzed instance");
        assert!(ts_match(&gold, &gold, &suite));
        assert!(
            !ts_match(&coincident, &gold, &suite),
            "suite failed to distinguish coincident query"
        );
    }

    #[test]
    fn ts_is_at_most_ex() {
        // Anything failing EX on the original instance fails TS too (instance 0 is
        // always in the suite).
        let db = db();
        let gold = parse("SELECT name FROM t").unwrap();
        let wrong = parse("SELECT grp FROM t WHERE id = 1").unwrap();
        let suite = build_suite(&db, &[&gold], SuiteConfig::default(), 7);
        assert!(!crate::metrics::ex_match(&wrong, &gold, &db));
        assert!(!ts_match(&wrong, &gold, &suite));
    }

    #[test]
    fn session_ts_agrees_with_direct_ts() {
        let db = db();
        let gold = parse("SELECT name FROM t WHERE id < 3").unwrap();
        let coincident = parse("SELECT name FROM t WHERE grp = 'x'").unwrap();
        let suite = build_suite(
            &db,
            &[&gold, &coincident],
            SuiteConfig { candidates: 60, max_kept: 12, probe_queries: 8 },
            1234,
        );
        let session = ExecSession::shared();
        for pred in ["SELECT name FROM t WHERE id < 3", "SELECT name FROM t WHERE grp = 'x'"] {
            assert_eq!(
                ts_match_str_with(&session, pred, &gold, &suite),
                ts_match_str(pred, &gold, &suite),
                "{pred}"
            );
        }
        // The gold executions were cached per suite instance on the first call
        // and reused for the second prediction.
        assert!(session.stats().result.hits as usize >= suite.databases.len());
    }

    #[test]
    fn fuzzed_instances_preserve_schema_and_fk_integrity() {
        let mut s = Schema::new("d");
        s.tables.push(Table {
            name: "parent".into(),
            display: "parent".into(),
            columns: vec![Column::new("id", ColumnType::Int)],
            primary_key: Some(0),
        });
        s.tables.push(Table {
            name: "child".into(),
            display: "child".into(),
            columns: vec![Column::new("id", ColumnType::Int), Column::new("pid", ColumnType::Int)],
            primary_key: Some(0),
        });
        s.foreign_keys.push(sqlkit::ForeignKey {
            from: sqlkit::ColumnId { table: 1, column: 1 },
            to: sqlkit::ColumnId { table: 0, column: 0 },
        });
        let mut db = Database::empty(s);
        db.insert(0, vec![Value::Int(1)]);
        db.insert(0, vec![Value::Int(2)]);
        db.insert(1, vec![Value::Int(1), Value::Int(2)]);
        let mut rng = StdRng::seed_from_u64(3);
        for salt in 0..10 {
            let f = fuzz_instance(&db, &mut rng, salt);
            assert_eq!(f.schema, db.schema);
            let parents = f.rows[0].len() as i64;
            for row in &f.rows[1] {
                if let Value::Int(p) = row[1] {
                    assert!(p >= 1 && p <= parents, "dangling fk after fuzz");
                }
            }
        }
    }

    #[test]
    fn mutants_differ_from_original() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = parse(
            "SELECT DISTINCT name FROM t WHERE id > 1 AND grp = 'x' ORDER BY id DESC LIMIT 2",
        )
        .unwrap();
        let ms = mutate(&q, &mut rng);
        assert!(!ms.is_empty());
        for m in &ms {
            assert_ne!(*m, q, "mutant identical to original");
        }
    }

    #[test]
    fn mutants_cover_set_operators() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = parse("SELECT name FROM t EXCEPT SELECT name FROM t WHERE grp = 'x'").unwrap();
        let ms = mutate(&q, &mut rng);
        assert!(ms
            .iter()
            .any(|m| m.compound.is_none() || m.compound.as_ref().unwrap().0 != SetOp::Except));
    }
}
