//! Structural diff of two [`EvalReport`]s (DESIGN.md §11).
//!
//! Given a baseline and a candidate run of the *same split*, [`diff_reports`]
//! produces per-example EM/EX/TS flip sets (regressed / fixed / unchanged),
//! aggregate metric deltas with a deterministic paired significance check
//! (McNemar with continuity correction on the flips), attribution-share shifts
//! per [`Blame`] class, and per-stage latency-histogram deltas. The diff
//! renders as a markdown dashboard ([`ReportDiff::render_markdown`]) and as
//! machine-readable JSON ([`diff_to_json`] / [`diff_from_json`]), and
//! [`gate`] turns it into a pass/fail verdict for CI regression gating.
//!
//! Everything here is a pure function of the two reports: since reports are
//! byte-identical for any `--jobs` count, so is every diff artifact.

use crate::attribution::Blame;
use crate::harness::EvalReport;
use crate::reportio::{escape, JsonValue, Parser};
use obs::{Stage, NUM_BUCKETS};
use std::fmt::Write as _;

/// Flip sets and significance for one metric (EM, EX, or TS).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricDiff {
    /// Baseline hit count.
    pub base_hits: usize,
    /// Candidate hit count.
    pub cand_hits: usize,
    /// Example indices that flipped hit → miss.
    pub regressed: Vec<usize>,
    /// Example indices that flipped miss → hit.
    pub fixed: Vec<usize>,
    /// Examples that stayed hits.
    pub unchanged_hit: usize,
    /// Examples that stayed misses.
    pub unchanged_miss: usize,
    /// McNemar χ² (continuity-corrected) over the flip counts.
    pub mcnemar_chi2: f64,
    /// Two-sided p-value of the χ² statistic (1 dof); 1.0 when nothing flipped.
    pub mcnemar_p: f64,
}

impl MetricDiff {
    fn build(pairs: impl Iterator<Item = (bool, bool)>) -> MetricDiff {
        let mut d = MetricDiff::default();
        for (idx, (base, cand)) in pairs.enumerate() {
            d.base_hits += base as usize;
            d.cand_hits += cand as usize;
            match (base, cand) {
                (true, false) => d.regressed.push(idx),
                (false, true) => d.fixed.push(idx),
                (true, true) => d.unchanged_hit += 1,
                (false, false) => d.unchanged_miss += 1,
            }
        }
        (d.mcnemar_chi2, d.mcnemar_p) = mcnemar(d.regressed.len(), d.fixed.len());
        d
    }

    /// Net hit delta (candidate − baseline).
    pub fn net(&self) -> i64 {
        self.cand_hits as i64 - self.base_hits as i64
    }

    /// No example flipped either way.
    pub fn is_empty(&self) -> bool {
        self.regressed.is_empty() && self.fixed.is_empty()
    }
}

/// McNemar's test with continuity correction on discordant pair counts
/// (`b` = hit→miss, `c` = miss→hit). Returns (χ², p). Deterministic: plain
/// f64 arithmetic, no sampling.
pub fn mcnemar(b: usize, c: usize) -> (f64, f64) {
    let n = (b + c) as f64;
    if n == 0.0 {
        return (0.0, 1.0);
    }
    let num = ((b as f64 - c as f64).abs() - 1.0).max(0.0);
    let chi2 = num * num / n;
    (chi2, chi2_sf(chi2))
}

/// Survival function of χ² with one degree of freedom: `erfc(sqrt(x/2))`.
fn chi2_sf(x: f64) -> f64 {
    erfc((x / 2.0).sqrt())
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let y = poly * (-x * x).exp();
    if x >= 0.0 {
        y
    } else {
        2.0 - y
    }
}

/// One blame class's share shift between the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameShift {
    /// Stable class name ([`Blame::name`]).
    pub class: String,
    /// Baseline loss count.
    pub base_count: usize,
    /// Candidate loss count.
    pub cand_count: usize,
    /// Baseline share of all EX losses, percent.
    pub base_share: f64,
    /// Candidate share of all EX losses, percent.
    pub cand_share: f64,
}

impl BlameShift {
    /// Share delta in percentage points (candidate − baseline).
    pub fn delta_share(&self) -> f64 {
        self.cand_share - self.base_share
    }
}

/// Per-stage latency-histogram delta (candidate − baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatencyDelta {
    /// Stable stage name ([`Stage::name`]).
    pub stage: String,
    /// Observation-count delta.
    pub count_delta: i64,
    /// Sum-of-latencies delta.
    pub sum_delta: i64,
    /// Max-latency delta.
    pub max_delta: i64,
    /// Mean-latency delta (0 when either side has no observations).
    pub mean_delta: f64,
    /// Per-bucket count deltas.
    pub buckets: Vec<i64>,
}

impl StageLatencyDelta {
    /// Whether the two histograms were identical.
    pub fn is_zero(&self) -> bool {
        self.count_delta == 0
            && self.sum_delta == 0
            && self.max_delta == 0
            && self.buckets.iter().all(|&b| b == 0)
    }
}

/// The structural diff of two evaluation reports over the same split.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Label of the baseline run (usually its registry run id).
    pub baseline: String,
    /// Label of the candidate run.
    pub candidate: String,
    /// Baseline system name.
    pub base_system: String,
    /// Candidate system name.
    pub cand_system: String,
    /// Split both runs evaluated.
    pub split: String,
    /// Examples compared.
    pub n: usize,
    /// Whether either run computed TS (TS flips are meaningful only if both did).
    pub has_ts: bool,
    /// EM flip sets.
    pub em: MetricDiff,
    /// EX flip sets.
    pub ex: MetricDiff,
    /// TS flip sets.
    pub ts: MetricDiff,
    /// Average prompt-token delta (candidate − baseline).
    pub avg_prompt_tokens_delta: f64,
    /// Average output-token delta (candidate − baseline).
    pub avg_output_tokens_delta: f64,
    /// Per-class blame shifts; empty when either run lacks attribution.
    pub blame: Vec<BlameShift>,
    /// Per-stage latency deltas, one entry per [`Stage`], in declaration order.
    pub latency: Vec<StageLatencyDelta>,
}

impl ReportDiff {
    /// An all-zero diff: no flips, no aggregate deltas, no blame or latency
    /// movement. Two archives of the identical configuration must satisfy this.
    pub fn is_empty(&self) -> bool {
        self.em.is_empty()
            && self.ex.is_empty()
            && self.ts.is_empty()
            && self.avg_prompt_tokens_delta == 0.0
            && self.avg_output_tokens_delta == 0.0
            && self.blame.iter().all(|b| b.base_count == b.cand_count)
            && self.latency.iter().all(|l| l.is_zero())
    }

    /// Render the diff as a markdown dashboard: headline metric table,
    /// flip-set summaries, per-module blame-shift table (paper-style), and
    /// latency movement. Byte-identical for byte-identical inputs.
    pub fn render_markdown(&self) -> String {
        let mut s = String::with_capacity(2048);
        let _ = writeln!(s, "# Run diff: `{}` → `{}`", self.baseline, self.candidate);
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "Baseline **{}** vs candidate **{}** on split `{}` ({} examples).",
            self.base_system, self.cand_system, self.split, self.n
        );
        let _ = writeln!(s);
        if self.is_empty() {
            let _ = writeln!(s, "**All-zero diff**: the runs are identical.");
            let _ = writeln!(s);
        }
        let _ = writeln!(s, "## Metrics");
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "| metric | baseline | candidate | net | regressed | fixed | McNemar χ² | p |"
        );
        let _ = writeln!(s, "|---|---:|---:|---:|---:|---:|---:|---:|");
        let rows: &[(&str, &MetricDiff)] = if self.has_ts {
            &[("EM", &self.em), ("EX", &self.ex), ("TS", &self.ts)]
        } else {
            &[("EM", &self.em), ("EX", &self.ex)]
        };
        for (name, m) in rows {
            let _ = writeln!(
                s,
                "| {name} | {}/{n} | {}/{n} | {:+} | {} | {} | {:.3} | {:.4} |",
                m.base_hits,
                m.cand_hits,
                m.net(),
                m.regressed.len(),
                m.fixed.len(),
                m.mcnemar_chi2,
                m.mcnemar_p,
                n = self.n,
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "Token averages: prompt {:+.2}, output {:+.2} per query.",
            self.avg_prompt_tokens_delta, self.avg_output_tokens_delta
        );
        let _ = writeln!(s);
        for (name, m) in rows {
            if m.is_empty() {
                continue;
            }
            let _ = writeln!(s, "### {name} flips");
            let _ = writeln!(s);
            let _ = writeln!(s, "- regressed ({}): {}", m.regressed.len(), idx_list(&m.regressed));
            let _ = writeln!(s, "- fixed ({}): {}", m.fixed.len(), idx_list(&m.fixed));
            let _ =
                writeln!(s, "- unchanged: {} hits, {} misses", m.unchanged_hit, m.unchanged_miss);
            let _ = writeln!(s);
        }
        if !self.blame.is_empty() {
            let _ = writeln!(s, "## Failure attribution shift");
            let _ = writeln!(s);
            let _ = writeln!(
                s,
                "| blame class | base losses | cand losses | base share | cand share | Δ share |"
            );
            let _ = writeln!(s, "|---|---:|---:|---:|---:|---:|");
            for b in &self.blame {
                let _ = writeln!(
                    s,
                    "| {} | {} | {} | {:.1}% | {:.1}% | {:+.1}pp |",
                    b.class,
                    b.base_count,
                    b.cand_count,
                    b.base_share,
                    b.cand_share,
                    b.delta_share()
                );
            }
            let _ = writeln!(s);
        }
        let moved: Vec<&StageLatencyDelta> = self.latency.iter().filter(|l| !l.is_zero()).collect();
        let _ = writeln!(s, "## Latency movement");
        let _ = writeln!(s);
        if moved.is_empty() {
            let _ = writeln!(s, "No latency-histogram changes.");
        } else {
            let _ = writeln!(s, "| stage | Δ calls | Δ sum | Δ max | Δ mean |");
            let _ = writeln!(s, "|---|---:|---:|---:|---:|");
            for l in moved {
                let _ = writeln!(
                    s,
                    "| {} | {:+} | {:+} | {:+} | {:+.1} |",
                    l.stage, l.count_delta, l.sum_delta, l.max_delta, l.mean_delta
                );
            }
        }
        s
    }
}

/// Render up to 20 example indices, eliding the rest.
fn idx_list(indices: &[usize]) -> String {
    const SHOWN: usize = 20;
    if indices.is_empty() {
        return "none".to_string();
    }
    let mut s = String::new();
    for (i, idx) in indices.iter().take(SHOWN).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "#{idx}");
    }
    if indices.len() > SHOWN {
        let _ = write!(s, ", … ({} more)", indices.len() - SHOWN);
    }
    s
}

/// Diff two reports of the same split.
///
/// Errors when the runs are not comparable: different splits, different
/// example counts, or either report predates per-example capture (schema v1).
pub fn diff_reports(
    base_label: &str,
    base: &EvalReport,
    cand_label: &str,
    cand: &EvalReport,
) -> Result<ReportDiff, String> {
    if base.split != cand.split {
        return Err(format!(
            "cannot diff runs over different splits: baseline `{}` vs candidate `{}`",
            base.split, cand.split
        ));
    }
    if base.examples.is_empty() && base.overall.n > 0 {
        return Err(format!(
            "baseline `{base_label}` has no per-example outcomes (schema-v1 archive); re-archive it with this binary"
        ));
    }
    if cand.examples.is_empty() && cand.overall.n > 0 {
        return Err(format!(
            "candidate `{cand_label}` has no per-example outcomes (schema-v1 archive)"
        ));
    }
    if base.examples.len() != cand.examples.len() {
        return Err(format!(
            "example counts differ: baseline {} vs candidate {} (different scale or split revision)",
            base.examples.len(),
            cand.examples.len()
        ));
    }
    let pairs = |f: fn(&crate::harness::ExampleOutcome) -> bool| {
        base.examples.iter().zip(&cand.examples).map(move |(b, c)| (f(b), f(c)))
    };
    let blame = match (&base.attribution, &cand.attribution) {
        (Some(b), Some(c)) => Blame::ALL
            .into_iter()
            .map(|class| BlameShift {
                class: class.name().to_string(),
                base_count: b.count(class),
                cand_count: c.count(class),
                base_share: b.share(class),
                cand_share: c.share(class),
            })
            .collect(),
        _ => Vec::new(),
    };
    let latency = Stage::REPORT
        .into_iter()
        .map(|stage| {
            let (bh, ch) = (&base.metrics.stage(stage).latency, &cand.metrics.stage(stage).latency);
            let mean = |h: &obs::Histogram| {
                if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                }
            };
            StageLatencyDelta {
                stage: stage.name().to_string(),
                count_delta: ch.count as i64 - bh.count as i64,
                sum_delta: ch.sum as i64 - bh.sum as i64,
                max_delta: ch.max as i64 - bh.max as i64,
                mean_delta: mean(ch) - mean(bh),
                buckets: (0..NUM_BUCKETS)
                    .map(|i| ch.buckets[i] as i64 - bh.buckets[i] as i64)
                    .collect(),
            }
        })
        .collect();
    Ok(ReportDiff {
        baseline: base_label.to_string(),
        candidate: cand_label.to_string(),
        base_system: base.system.clone(),
        cand_system: cand.system.clone(),
        split: base.split.clone(),
        n: base.examples.len(),
        has_ts: base.has_ts && cand.has_ts,
        em: MetricDiff::build(pairs(|o| o.em)),
        ex: MetricDiff::build(pairs(|o| o.ex)),
        ts: MetricDiff::build(pairs(|o| o.ts)),
        avg_prompt_tokens_delta: cand.avg_prompt_tokens - base.avg_prompt_tokens,
        avg_output_tokens_delta: cand.avg_output_tokens - base.avg_output_tokens,
        blame,
        latency,
    })
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// Thresholds for [`gate`]: how much movement a candidate run may show before
/// the gate fails. Defaults are strict: any EX or TS regression fails; a blame
/// class may grow its EX-loss share by at most 10 percentage points.
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Maximum tolerated EX hit→miss flips.
    pub max_ex_regressions: usize,
    /// Maximum tolerated TS hit→miss flips.
    pub max_ts_regressions: usize,
    /// Maximum tolerated blame-share increase, in percentage points.
    pub max_blame_share_increase: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { max_ex_regressions: 0, max_ts_regressions: 0, max_blame_share_increase: 10.0 }
    }
}

/// Gate verdict: pass/fail plus one human-readable line per violation.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Whether every threshold held.
    pub passed: bool,
    /// Violated thresholds, in evaluation order.
    pub violations: Vec<String>,
}

/// Check a diff against gate thresholds. Deterministic: a pure function of
/// the diff and the config.
pub fn gate(diff: &ReportDiff, cfg: &GateConfig) -> GateOutcome {
    let mut violations = Vec::new();
    if diff.ex.regressed.len() > cfg.max_ex_regressions {
        violations.push(format!(
            "EX regressions: {} examples flipped hit→miss (allowed {}) — {}",
            diff.ex.regressed.len(),
            cfg.max_ex_regressions,
            idx_list(&diff.ex.regressed)
        ));
    }
    if diff.has_ts && diff.ts.regressed.len() > cfg.max_ts_regressions {
        violations.push(format!(
            "TS regressions: {} examples flipped hit→miss (allowed {}) — {}",
            diff.ts.regressed.len(),
            cfg.max_ts_regressions,
            idx_list(&diff.ts.regressed)
        ));
    }
    for b in &diff.blame {
        if b.delta_share() > cfg.max_blame_share_increase {
            violations.push(format!(
                "blame-share blowup: `{}` grew {:.1}pp ({:.1}% → {:.1}%, allowed {:+.1}pp)",
                b.class,
                b.delta_share(),
                b.base_share,
                b.cand_share,
                cfg.max_blame_share_increase
            ));
        }
    }
    GateOutcome { passed: violations.is_empty(), violations }
}

// ---------------------------------------------------------------------------
// JSON codec (machine-readable dashboard)
// ---------------------------------------------------------------------------

/// Serialize a diff to a JSON object string. `f64` fields use `{:?}` (shortest
/// round-trippable form), so [`diff_from_json`] recovers them bit-exactly and
/// equal diffs always produce byte-identical text.
pub fn diff_to_json(d: &ReportDiff) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    let _ = write!(out, "\"baseline\":{},", escape(&d.baseline));
    let _ = write!(out, "\"candidate\":{},", escape(&d.candidate));
    let _ = write!(out, "\"base_system\":{},", escape(&d.base_system));
    let _ = write!(out, "\"cand_system\":{},", escape(&d.cand_system));
    let _ = write!(out, "\"split\":{},", escape(&d.split));
    let _ = write!(out, "\"n\":{},", d.n);
    let _ = write!(out, "\"has_ts\":{},", d.has_ts);
    for (name, m) in [("em", &d.em), ("ex", &d.ex), ("ts", &d.ts)] {
        let _ = write!(out, "\"{name}\":{},", metric_to_json(m));
    }
    let _ = write!(out, "\"avg_prompt_tokens_delta\":{:?},", d.avg_prompt_tokens_delta);
    let _ = write!(out, "\"avg_output_tokens_delta\":{:?},", d.avg_output_tokens_delta);
    out.push_str("\"blame\":[");
    for (i, b) in d.blame.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"class\":{},\"base_count\":{},\"cand_count\":{},\"base_share\":{:?},\"cand_share\":{:?}}}",
            escape(&b.class),
            b.base_count,
            b.cand_count,
            b.base_share,
            b.cand_share
        );
    }
    out.push_str("],\"latency\":[");
    for (i, l) in d.latency.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stage\":{},\"count_delta\":{},\"sum_delta\":{},\"max_delta\":{},\"mean_delta\":{:?},\"buckets\":[",
            escape(&l.stage),
            l.count_delta,
            l.sum_delta,
            l.max_delta,
            l.mean_delta
        );
        for (j, b) in l.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn metric_to_json(m: &MetricDiff) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"base_hits\":{},\"cand_hits\":{},", m.base_hits, m.cand_hits);
    for (name, set) in [("regressed", &m.regressed), ("fixed", &m.fixed)] {
        let _ = write!(out, "\"{name}\":[");
        for (i, idx) in set.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{idx}");
        }
        out.push_str("],");
    }
    let _ = write!(
        out,
        "\"unchanged_hit\":{},\"unchanged_miss\":{},\"mcnemar_chi2\":{:?},\"mcnemar_p\":{:?}}}",
        m.unchanged_hit, m.unchanged_miss, m.mcnemar_chi2, m.mcnemar_p
    );
    out
}

/// Parse a diff written by [`diff_to_json`].
pub fn diff_from_json(text: &str) -> Result<ReportDiff, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    let obj = value.as_object("diff")?;
    let mut d = ReportDiff {
        baseline: String::new(),
        candidate: String::new(),
        base_system: String::new(),
        cand_system: String::new(),
        split: String::new(),
        n: 0,
        has_ts: false,
        em: MetricDiff::default(),
        ex: MetricDiff::default(),
        ts: MetricDiff::default(),
        avg_prompt_tokens_delta: 0.0,
        avg_output_tokens_delta: 0.0,
        blame: Vec::new(),
        latency: Vec::new(),
    };
    for (key, val) in obj {
        match key.as_str() {
            "baseline" => d.baseline = val.as_string(key)?,
            "candidate" => d.candidate = val.as_string(key)?,
            "base_system" => d.base_system = val.as_string(key)?,
            "cand_system" => d.cand_system = val.as_string(key)?,
            "split" => d.split = val.as_string(key)?,
            "n" => d.n = val.as_usize(key)?,
            "has_ts" => d.has_ts = val.as_bool(key)?,
            "em" => d.em = metric_from_value(val)?,
            "ex" => d.ex = metric_from_value(val)?,
            "ts" => d.ts = metric_from_value(val)?,
            "avg_prompt_tokens_delta" => d.avg_prompt_tokens_delta = val.as_f64(key)?,
            "avg_output_tokens_delta" => d.avg_output_tokens_delta = val.as_f64(key)?,
            "blame" => {
                for item in val.as_array("blame")? {
                    let obj = item.as_object("blame[i]")?;
                    let mut b = BlameShift {
                        class: String::new(),
                        base_count: 0,
                        cand_count: 0,
                        base_share: 0.0,
                        cand_share: 0.0,
                    };
                    for (k, v) in obj {
                        match k.as_str() {
                            "class" => b.class = v.as_string(k)?,
                            "base_count" => b.base_count = v.as_usize(k)?,
                            "cand_count" => b.cand_count = v.as_usize(k)?,
                            "base_share" => b.base_share = v.as_f64(k)?,
                            "cand_share" => b.cand_share = v.as_f64(k)?,
                            other => return Err(format!("unknown blame field `{other}`")),
                        }
                    }
                    d.blame.push(b);
                }
            }
            "latency" => {
                for item in val.as_array("latency")? {
                    let obj = item.as_object("latency[i]")?;
                    let mut l = StageLatencyDelta {
                        stage: String::new(),
                        count_delta: 0,
                        sum_delta: 0,
                        max_delta: 0,
                        mean_delta: 0.0,
                        buckets: Vec::new(),
                    };
                    for (k, v) in obj {
                        match k.as_str() {
                            "stage" => l.stage = v.as_string(k)?,
                            "count_delta" => l.count_delta = as_i64(v, k)?,
                            "sum_delta" => l.sum_delta = as_i64(v, k)?,
                            "max_delta" => l.max_delta = as_i64(v, k)?,
                            "mean_delta" => l.mean_delta = v.as_f64(k)?,
                            "buckets" => {
                                l.buckets = v
                                    .as_array("buckets")?
                                    .iter()
                                    .map(|b| as_i64(b, "buckets[i]"))
                                    .collect::<Result<_, _>>()?;
                            }
                            other => return Err(format!("unknown latency field `{other}`")),
                        }
                    }
                    d.latency.push(l);
                }
            }
            other => return Err(format!("unknown diff field `{other}`")),
        }
    }
    Ok(d)
}

fn metric_from_value(value: &JsonValue) -> Result<MetricDiff, String> {
    let obj = value.as_object("metric diff")?;
    let mut m = MetricDiff::default();
    for (key, val) in obj {
        match key.as_str() {
            "base_hits" => m.base_hits = val.as_usize(key)?,
            "cand_hits" => m.cand_hits = val.as_usize(key)?,
            "regressed" => m.regressed = idx_vec(val)?,
            "fixed" => m.fixed = idx_vec(val)?,
            "unchanged_hit" => m.unchanged_hit = val.as_usize(key)?,
            "unchanged_miss" => m.unchanged_miss = val.as_usize(key)?,
            "mcnemar_chi2" => m.mcnemar_chi2 = val.as_f64(key)?,
            "mcnemar_p" => m.mcnemar_p = val.as_f64(key)?,
            other => return Err(format!("unknown metric-diff field `{other}`")),
        }
    }
    Ok(m)
}

fn idx_vec(value: &JsonValue) -> Result<Vec<usize>, String> {
    value.as_array("flip set")?.iter().map(|v| v.as_usize("flip index")).collect()
}

fn as_i64(value: &JsonValue, what: &str) -> Result<i64, String> {
    match value {
        JsonValue::Num(s) => s.parse().map_err(|e| format!("{what}: {e}")),
        _ => Err(format!("{what}: expected integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Bucket, ExampleOutcome};
    use crate::AttributionReport;
    use obs::StageMetrics;

    fn report(name: &str, outcomes: &[(bool, bool, bool)]) -> EvalReport {
        let examples: Vec<ExampleOutcome> = outcomes
            .iter()
            .enumerate()
            .map(|(i, &(em, ex, ts))| ExampleOutcome { em, ex, ts, hardness: (i % 4) as u8 })
            .collect();
        let mut overall = Bucket::default();
        for e in &examples {
            overall.n += 1;
            overall.em += e.em as usize;
            overall.ex += e.ex as usize;
            overall.ts += e.ts as usize;
        }
        EvalReport {
            system: name.into(),
            split: "dev".into(),
            overall,
            by_hardness: [Bucket::default(); 4],
            avg_prompt_tokens: 100.0,
            avg_output_tokens: 10.0,
            has_ts: true,
            metrics: StageMetrics::default(),
            attribution: None,
            examples,
        }
    }

    #[test]
    fn self_diff_is_empty() {
        let a = report("A", &[(true, true, true), (false, false, false), (true, false, true)]);
        let d = diff_reports("x", &a, "y", &a).unwrap();
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(d.em.mcnemar_p, 1.0);
        assert!(gate(&d, &GateConfig::default()).passed);
        assert!(d.render_markdown().contains("All-zero diff"));
    }

    #[test]
    fn flip_sets_partition_examples() {
        let a = report("A", &[(true, true, false), (false, true, true), (true, false, false)]);
        let b = report("B", &[(false, true, true), (true, false, false), (true, false, false)]);
        let d = diff_reports("a", &a, "b", &b).unwrap();
        for m in [&d.em, &d.ex, &d.ts] {
            assert_eq!(m.regressed.len() + m.fixed.len() + m.unchanged_hit + m.unchanged_miss, d.n);
        }
        assert_eq!(d.em.regressed, vec![0]);
        assert_eq!(d.em.fixed, vec![1]);
        assert_eq!(d.ex.regressed, vec![1]);
    }

    #[test]
    fn diff_is_antisymmetric() {
        let a = report("A", &[(true, true, false), (false, true, true), (true, false, false)]);
        let b = report("B", &[(false, false, true), (true, true, true), (true, true, false)]);
        let ab = diff_reports("a", &a, "b", &b).unwrap();
        let ba = diff_reports("b", &b, "a", &a).unwrap();
        for (x, y) in [(&ab.em, &ba.em), (&ab.ex, &ba.ex), (&ab.ts, &ba.ts)] {
            assert_eq!(x.regressed, y.fixed);
            assert_eq!(x.fixed, y.regressed);
            assert_eq!(x.net(), -y.net());
            assert_eq!(x.mcnemar_chi2, y.mcnemar_chi2, "χ² is symmetric in b,c");
        }
        assert_eq!(ab.avg_prompt_tokens_delta, -ba.avg_prompt_tokens_delta);
    }

    #[test]
    fn json_round_trips_bit_exact() {
        let a = report("A", &[(true, true, false), (false, true, true)]);
        let mut b = report("B", &[(false, true, true), (true, false, false)]);
        b.avg_prompt_tokens = 133.33333333333334;
        b.attribution = Some(AttributionReport::default());
        let mut a2 = a.clone();
        a2.attribution = Some(AttributionReport { total: 2, ex_correct: 1, ..Default::default() });
        let d = diff_reports("base", &a2, "cand", &b).unwrap();
        let json = diff_to_json(&d);
        let back = diff_from_json(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(json, diff_to_json(&back), "re-serialization is byte-identical");
        assert!(diff_from_json("{\"bogus\":1}").is_err());
        assert!(diff_from_json("{").is_err());
    }

    #[test]
    fn incompatible_reports_are_rejected() {
        let a = report("A", &[(true, true, true)]);
        let b = report("B", &[(true, true, true), (false, false, false)]);
        assert!(diff_reports("a", &a, "b", &b).unwrap_err().contains("example counts differ"));
        let mut c = a.clone();
        c.split = "dk".into();
        assert!(diff_reports("a", &a, "c", &c).unwrap_err().contains("different splits"));
        let mut v1 = a.clone();
        v1.examples.clear();
        assert!(diff_reports("v1", &v1, "a", &a).unwrap_err().contains("per-example"));
    }

    #[test]
    fn mcnemar_matches_reference_values() {
        // b=c: continuity-corrected statistic shrinks but stays symmetric.
        let (chi2, p) = mcnemar(0, 0);
        assert_eq!((chi2, p), (0.0, 1.0));
        let (chi2, p) = mcnemar(10, 2);
        // ((|10-2|-1)^2)/12 = 49/12 ≈ 4.0833; p ≈ 0.0433.
        assert!((chi2 - 49.0 / 12.0).abs() < 1e-12);
        assert!((p - 0.0433).abs() < 2e-3, "p={p}");
        // Larger asymmetry → smaller p.
        let (_, p_big) = mcnemar(30, 2);
        assert!(p_big < p);
    }

    #[test]
    fn gate_trips_on_regressions_and_blame_blowup() {
        let a = report("A", &[(true, true, true), (true, true, true)]);
        let b = report("B", &[(true, false, false), (true, true, true)]);
        let d = diff_reports("a", &a, "b", &b).unwrap();
        let out = gate(&d, &GateConfig::default());
        assert!(!out.passed);
        assert_eq!(out.violations.len(), 2, "EX and TS each violated: {:?}", out.violations);
        // Loosened thresholds pass.
        let loose =
            GateConfig { max_ex_regressions: 1, max_ts_regressions: 1, ..Default::default() };
        assert!(gate(&d, &loose).passed);

        // Blame-share blowup on otherwise flat metrics.
        let mut base = report("A", &[(true, false, false); 4]);
        let mut cand = base.clone();
        cand.system = "B".into();
        let mut ab = AttributionReport { total: 4, ex_correct: 0, ..Default::default() };
        ab.counts[Blame::PruningRecallMiss.index()] = 4;
        let mut cb = AttributionReport { total: 4, ex_correct: 0, ..Default::default() };
        cb.counts[Blame::LlmHallucination.index()] = 4;
        base.attribution = Some(ab);
        cand.attribution = Some(cb);
        let d = diff_reports("a", &base, "b", &cand).unwrap();
        let out = gate(&d, &GateConfig::default());
        assert!(!out.passed);
        assert!(out.violations[0].contains("llm-hallucination"), "{:?}", out.violations);
    }
}
