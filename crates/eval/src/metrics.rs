//! Exact-Set Match and Execution Match metrics (§V-A2).
//!
//! The session-mediated forms inherit the session's engine choice
//! ([`engine::EngineMode`]); EX/TS verdicts are identical under the vectorized
//! pipeline and the legacy interpreter because the engines produce
//! byte-identical result sets (DESIGN.md §12).

use engine::{execute, order_matters, Database, SessionDb};
use sqlkit::{exact_set_match, parse, Query, Schema};

/// Exact-Set Match: clause-level set comparison with values masked and aliases
/// resolved (Spider's official EM).
pub fn em_match(pred: &Query, gold: &Query, schema: &Schema) -> bool {
    exact_set_match(pred, gold, schema)
}

/// EM on a raw predicted string: a prediction that does not parse never matches.
pub fn em_match_str(pred_sql: &str, gold: &Query, schema: &Schema) -> bool {
    match parse(pred_sql) {
        Ok(pred) => em_match(&pred, gold, schema),
        Err(_) => false,
    }
}

/// Execution Match: identical results on the benchmark database. Order-sensitive
/// exactly when the gold query orders its output (mirroring Spider's evaluation,
/// which string-matches `ORDER BY` in the gold SQL).
pub fn ex_match(pred: &Query, gold: &Query, db: &Database) -> bool {
    let Ok(pred_rs) = execute(db, pred) else {
        return false;
    };
    let Ok(gold_rs) = execute(db, gold) else {
        return false;
    };
    pred_rs.same_result(&gold_rs, order_matters(gold))
}

/// EX on a raw predicted string.
pub fn ex_match_str(pred_sql: &str, gold: &Query, db: &Database) -> bool {
    match parse(pred_sql) {
        Ok(pred) => ex_match(&pred, gold, db),
        Err(_) => false,
    }
}

/// [`ex_match`] through a bound execution session: plans and results are
/// memoized per (database fingerprint, canonical SQL), so the gold query of an
/// example costs one engine run no matter how many predictions it is scored
/// against. Returns exactly what [`ex_match`] returns for the same inputs.
pub fn ex_match_with(sdb: &SessionDb<'_, '_>, pred: &Query, gold: &Query) -> bool {
    let Ok(pred_rs) = sdb.execute(pred) else {
        return false;
    };
    let Ok(gold_rs) = sdb.execute(gold) else {
        return false;
    };
    pred_rs.same_result(&gold_rs, order_matters(gold))
}

/// [`ex_match_str`] through a bound execution session; the parse result is
/// memoized alongside plans and results.
pub fn ex_match_str_with(sdb: &SessionDb<'_, '_>, pred_sql: &str, gold: &Query) -> bool {
    match sdb.session().parse(pred_sql) {
        Some(pred) => ex_match_with(sdb, &pred, gold),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::Value;
    use sqlkit::{Column, ColumnType, Table};

    fn db() -> Database {
        let mut s = Schema::new("d");
        s.tables.push(Table {
            name: "t".into(),
            display: "t".into(),
            columns: vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("grp", ColumnType::Text),
            ],
            primary_key: Some(0),
        });
        let mut db = Database::empty(s);
        for (i, (n, g)) in [("a", "x"), ("b", "x"), ("c", "y")].iter().enumerate() {
            db.insert(
                0,
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Text(n.to_string()),
                    Value::Text(g.to_string()),
                ],
            );
        }
        db
    }

    #[test]
    fn ex_matches_semantically_different_but_coincident_queries() {
        // The EX-false-positive effect the paper discusses: different semantics,
        // same result on this data.
        let db = db();
        let gold = parse("SELECT name FROM t WHERE id < 3").unwrap();
        let pred = parse("SELECT name FROM t WHERE grp = 'x'").unwrap();
        assert!(ex_match(&pred, &gold, &db));
        assert!(!em_match(&pred, &gold, &db.schema));
    }

    #[test]
    fn ex_respects_order_when_gold_orders() {
        let db = db();
        let gold = parse("SELECT name FROM t ORDER BY id DESC").unwrap();
        let pred = parse("SELECT name FROM t ORDER BY id ASC").unwrap();
        assert!(!ex_match(&pred, &gold, &db));
        // Unordered gold tolerates row order differences.
        let gold2 = parse("SELECT name FROM t").unwrap();
        assert!(ex_match(&pred, &gold2, &db));
    }

    #[test]
    fn unparseable_or_failing_predictions_never_match() {
        let db = db();
        let gold = parse("SELECT name FROM t").unwrap();
        assert!(!em_match_str("SELEC name FRM t", &gold, &db.schema));
        assert!(!ex_match_str("SELECT nope FROM t", &gold, &db));
        assert!(!ex_match_str("SELECT name FROM missing", &gold, &db));
    }

    #[test]
    fn session_ex_agrees_with_direct_ex() {
        let db = db();
        let session = engine::ExecSession::shared();
        let sdb = session.bind(&db);
        let gold = parse("SELECT name FROM t WHERE id < 3").unwrap();
        for pred_sql in [
            "SELECT name FROM t WHERE grp = 'x'",
            "SELECT name FROM t WHERE id = 2",
            "SELECT nope FROM t",
            "SELEC name FRM t",
        ] {
            assert_eq!(
                ex_match_str_with(&sdb, pred_sql, &gold),
                ex_match_str(pred_sql, &gold, &db),
                "{pred_sql}"
            );
        }
        // Scoring the same predictions again is served from the result cache.
        let before = session.stats().result.hits;
        assert!(ex_match_str_with(&sdb, "SELECT name FROM t WHERE grp = 'x'", &gold));
        assert!(session.stats().result.hits > before);
    }

    #[test]
    fn em_ignores_values_ex_does_not() {
        let db = db();
        let gold = parse("SELECT name FROM t WHERE id = 1").unwrap();
        let pred = parse("SELECT name FROM t WHERE id = 2").unwrap();
        assert!(em_match(&pred, &gold, &db.schema));
        assert!(!ex_match(&pred, &gold, &db));
    }
}
