//! Failure-mode analysis: classify *why* a prediction missed, in the vocabulary the
//! paper uses — wrong operator composition (skeleton mismatch), schema linking
//! slips (right skeleton, wrong columns/tables), wrong constants (EM-exact but
//! execution-different), execution errors, and parse failures.

use crate::metrics::{em_match, ex_match_with};
use engine::{Database, ExecSession, SessionDb};
use serde::{Deserialize, Serialize};
use sqlkit::{exact_set_match, Query, Skeleton};
use std::collections::BTreeMap;

/// Why a single prediction failed (or that it didn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureMode {
    /// EM and EX both hold.
    Correct,
    /// Semantically right answer (EX) with a different structure (no EM) — the
    /// equivalence-rewrite band the paper's Table 1 highlights.
    EquivalentForm,
    /// The prediction's skeleton differs from the gold skeleton: the LLM picked the
    /// wrong operator composition (§I's core failure).
    WrongComposition,
    /// Same skeleton, same masked structure, but execution differs only through
    /// constants: wrong value.
    WrongValue,
    /// Same skeleton, EM fails: the structure is right but schema items are wrong
    /// (linking slip).
    WrongSchemaLinking,
    /// The prediction does not execute on the database.
    ExecutionError,
    /// The prediction does not parse.
    ParseError,
}

impl FailureMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FailureMode::Correct => "correct",
            FailureMode::EquivalentForm => "equivalent-form",
            FailureMode::WrongComposition => "wrong-composition",
            FailureMode::WrongValue => "wrong-value",
            FailureMode::WrongSchemaLinking => "wrong-schema-linking",
            FailureMode::ExecutionError => "execution-error",
            FailureMode::ParseError => "parse-error",
        }
    }
}

/// Classify one prediction against its gold query and database.
pub fn classify(pred_sql: &str, gold: &Query, db: &Database) -> FailureMode {
    classify_with(&ExecSession::disabled().bind(db), pred_sql, gold)
}

/// [`classify`] through a bound execution session: the prediction's parse and
/// both executions are memoized, so re-classifying predictions already scored
/// by the harness costs no extra engine runs. Returns exactly what
/// [`classify`] returns for the same inputs.
pub fn classify_with(sdb: &SessionDb<'_, '_>, pred_sql: &str, gold: &Query) -> FailureMode {
    let Some(pred) = sdb.session().parse(pred_sql) else {
        return FailureMode::ParseError;
    };
    if sdb.execute(&pred).is_err() {
        return FailureMode::ExecutionError;
    }
    let db = sdb.db();
    let em = em_match(&pred, gold, &db.schema);
    let ex = ex_match_with(sdb, &pred, gold);
    if em && ex {
        return FailureMode::Correct;
    }
    if !em && ex {
        return FailureMode::EquivalentForm;
    }
    // Execution differs; localize the cause.
    let pred_skel = Skeleton::from_query(&pred);
    let gold_skel = Skeleton::from_query(gold);
    if pred_skel != gold_skel {
        return FailureMode::WrongComposition;
    }
    if em {
        // EM masks values: identical structure and schema items, different result
        // — the constant must be wrong.
        return FailureMode::WrongValue;
    }
    // Same skeleton, EM broken: schema items differ.
    debug_assert!(!exact_set_match(&pred, gold, &db.schema));
    FailureMode::WrongSchemaLinking
}

/// Aggregate failure-mode counts over a set of (prediction, example) pairs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrorReport {
    /// Mode -> count.
    pub counts: BTreeMap<FailureMode, usize>,
    /// Total classified predictions.
    pub total: usize,
}

impl ErrorReport {
    /// Add one classification.
    pub fn add(&mut self, mode: FailureMode) {
        *self.counts.entry(mode).or_insert(0) += 1;
        self.total += 1;
    }

    /// Percentage for a mode.
    pub fn pct(&self, mode: FailureMode) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.counts.get(&mode).copied().unwrap_or(0) as f64 / self.total as f64
        }
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (mode, n) in &self.counts {
            s.push_str(&format!("  {:<22} {:>6}  ({:>5.1}%)\n", mode.label(), n, self.pct(*mode)));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::Value;
    use sqlkit::{parse, Column, ColumnType, Schema, Table};

    fn db() -> Database {
        let mut s = Schema::new("d");
        s.tables.push(Table {
            name: "t".into(),
            display: "t".into(),
            columns: vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("grp", ColumnType::Text),
            ],
            primary_key: Some(0),
        });
        let mut db = Database::empty(s);
        for (i, (n, g)) in [("a", "x"), ("b", "y"), ("c", "y")].iter().enumerate() {
            db.insert(
                0,
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Text(n.to_string()),
                    Value::Text(g.to_string()),
                ],
            );
        }
        db
    }

    fn gold() -> Query {
        parse("SELECT name FROM t WHERE id = 1").unwrap()
    }

    #[test]
    fn classifies_every_mode() {
        let db = db();
        let gold = gold();
        assert_eq!(classify("SELECT name FROM t WHERE id = 1", &gold, &db), FailureMode::Correct);
        assert_eq!(classify("not sql at all", &gold, &db), FailureMode::ParseError);
        assert_eq!(
            classify("SELECT nope FROM t WHERE id = 1", &gold, &db),
            FailureMode::ExecutionError
        );
        // Wrong constant: same structure, different rows.
        assert_eq!(
            classify("SELECT name FROM t WHERE id = 2", &gold, &db),
            FailureMode::WrongValue
        );
        // Wrong linking: same skeleton, different column.
        assert_eq!(
            classify("SELECT grp FROM t WHERE id = 1", &gold, &db),
            FailureMode::WrongSchemaLinking
        );
        // Wrong composition: extra operator structure with different result.
        assert_eq!(
            classify("SELECT name FROM t WHERE id = 1 OR id = 2", &gold, &db),
            FailureMode::WrongComposition
        );
        // Equivalent form: boundary shift keeps the result, breaks EM.
        assert_eq!(
            classify("SELECT name FROM t WHERE id < 2", &gold, &db),
            FailureMode::EquivalentForm
        );
    }

    #[test]
    fn session_classification_agrees_with_direct() {
        let db = db();
        let gold = gold();
        let session = ExecSession::shared();
        let sdb = session.bind(&db);
        for pred in [
            "SELECT name FROM t WHERE id = 1",
            "not sql at all",
            "SELECT nope FROM t WHERE id = 1",
            "SELECT name FROM t WHERE id = 2",
            "SELECT grp FROM t WHERE id = 1",
            "SELECT name FROM t WHERE id = 1 OR id = 2",
            "SELECT name FROM t WHERE id < 2",
        ] {
            assert_eq!(classify_with(&sdb, pred, &gold), classify(pred, &gold, &db), "{pred}");
        }
    }

    #[test]
    fn wrong_value_vs_wrong_schema_linking_boundary() {
        let db = db();
        let gold = gold();
        // Same skeleton, same schema items, only the constant differs: EM holds
        // (values are masked) so the wrong result can only come from the value.
        assert_eq!(
            classify("SELECT name FROM t WHERE id = 3", &gold, &db),
            FailureMode::WrongValue
        );
        // Same skeleton but a different schema item in the predicate: EM breaks
        // while the shape is right — a linking slip, not a wrong value, even
        // though the constant differs too.
        assert_eq!(
            classify("SELECT name FROM t WHERE grp = 'y'", &gold, &db),
            FailureMode::WrongSchemaLinking
        );
        // Swapped columns with the gold constant land on the same side.
        assert_eq!(
            classify("SELECT grp FROM t WHERE id = 1", &gold, &db),
            FailureMode::WrongSchemaLinking
        );
    }

    #[test]
    fn equivalent_form_outranks_skeleton_comparison() {
        let db = db();
        let gold = gold();
        // Structurally different but EX-equal: EX is checked before skeletons,
        // so this is the equivalence band, not wrong-composition.
        assert_eq!(
            classify("SELECT name FROM t WHERE id = 1 AND id = 1", &gold, &db),
            FailureMode::EquivalentForm
        );
        // A schema-item substitution that happens to return the gold rows is
        // also equivalent-form (grp = 'x' selects exactly row 1).
        assert_eq!(
            classify("SELECT name FROM t WHERE grp = 'x'", &gold, &db),
            FailureMode::EquivalentForm
        );
    }

    #[test]
    fn execution_and_parse_failures_outrank_everything() {
        let db = db();
        let gold = gold();
        // An unparsable prediction never reaches execution.
        assert_eq!(classify("", &gold, &db), FailureMode::ParseError);
        assert_eq!(classify("SELECT FROM WHERE", &gold, &db), FailureMode::ParseError);
        // A parsable prediction over a hallucinated schema item fails at
        // execution, before any EM/EX comparison.
        assert_eq!(
            classify("SELECT name FROM ghost WHERE id = 1", &gold, &db),
            FailureMode::ExecutionError
        );
    }

    #[test]
    fn report_accumulates_and_renders() {
        let mut r = ErrorReport::default();
        r.add(FailureMode::Correct);
        r.add(FailureMode::Correct);
        r.add(FailureMode::WrongComposition);
        assert_eq!(r.total, 3);
        assert!((r.pct(FailureMode::Correct) - 66.7).abs() < 0.1);
        let text = r.render();
        assert!(text.contains("wrong-composition"));
        assert!(text.contains("66.7%"));
        assert_eq!(ErrorReport::default().pct(FailureMode::Correct), 0.0);
    }
}
