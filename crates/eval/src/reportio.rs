//! JSON persistence for [`EvalReport`]: a dependency-free writer/parser pair so
//! reports survive a round trip through disk or pipes. The types also carry
//! serde derives; this module stands in for `serde_json`, which is not part of
//! the workspace dependency set.

use crate::attribution::{AttributionReport, Blame};
use crate::harness::{Bucket, EvalReport, ExampleOutcome};
use obs::{Clock, Counter, Fixer, Gauge, GaugeSlot, Histogram, Stage, StageMetrics, NUM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The report schema version this codec writes. v1 predates `schema_version`
/// and per-example outcomes; a missing `schema_version` on read means v1.
/// Future versions are rejected with a descriptive error so archived runs from
/// a newer binary never decode silently wrong.
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// Serialize a report to a JSON object string.
///
/// Field order matches struct declaration order. `f64` fields are written with
/// enough precision ({:?}, i.e. shortest round-trippable form) that
/// [`report_from_json`] recovers them bit-exactly.
pub fn report_to_json(report: &EvalReport) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    write!(out, "\"schema_version\":{REPORT_SCHEMA_VERSION},").unwrap();
    write!(out, "\"system\":{},", escape(&report.system)).unwrap();
    write!(out, "\"split\":{},", escape(&report.split)).unwrap();
    write!(out, "\"overall\":{},", bucket_to_json(&report.overall)).unwrap();
    out.push_str("\"by_hardness\":[");
    for (i, b) in report.by_hardness.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&bucket_to_json(b));
    }
    out.push_str("],");
    write!(out, "\"avg_prompt_tokens\":{:?},", report.avg_prompt_tokens).unwrap();
    write!(out, "\"avg_output_tokens\":{:?},", report.avg_output_tokens).unwrap();
    write!(out, "\"has_ts\":{},", report.has_ts).unwrap();
    write!(out, "\"metrics\":{},", metrics_to_json(&report.metrics)).unwrap();
    match &report.attribution {
        Some(a) => write!(out, "\"attribution\":{},", attribution_to_json(a)).unwrap(),
        None => out.push_str("\"attribution\":null,"),
    }
    // Per-example outcomes, packed (bit 0 EM, bit 1 EX, bit 2 TS, bits 3.. hardness).
    out.push_str("\"examples\":[");
    for (i, e) in report.examples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}", e.pack()).unwrap();
    }
    out.push_str("]}");
    out
}

/// Serialize an [`AttributionReport`] to a JSON object string. Blame classes
/// and error categories are keyed by their stable names in declaration order.
pub fn attribution_to_json(a: &AttributionReport) -> String {
    let mut out = String::with_capacity(256);
    write!(out, "{{\"total\":{},\"ex_correct\":{},", a.total, a.ex_correct).unwrap();
    out.push_str("\"counts\":{");
    for (i, blame) in Blame::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}:{}", escape(blame.name()), a.count(blame)).unwrap();
    }
    out.push_str("},\"llm_by_category\":{");
    for (i, fixer) in Fixer::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}:{}", escape(fixer.name()), a.llm_by_category[fixer.index()]).unwrap();
    }
    write!(out, "}},\"llm_uncategorized\":{}}}", a.llm_uncategorized).unwrap();
    out
}

/// Parse a standalone attribution document written by [`attribution_to_json`].
pub fn attribution_from_json(text: &str) -> Result<AttributionReport, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    attribution_from_value(&value)
}

fn attribution_from_value(value: &JsonValue) -> Result<AttributionReport, String> {
    let obj = value.as_object("attribution")?;
    let mut a = AttributionReport::default();
    for (key, val) in obj {
        match key.as_str() {
            "total" => a.total = val.as_usize(key)?,
            "ex_correct" => a.ex_correct = val.as_usize(key)?,
            "counts" => {
                for (name, v) in val.as_object("counts")? {
                    let blame = Blame::from_name(name)
                        .ok_or_else(|| format!("unknown blame class `{name}`"))?;
                    a.counts[blame.index()] = v.as_usize(name)?;
                }
            }
            "llm_by_category" => {
                for (name, v) in val.as_object("llm_by_category")? {
                    let fixer = Fixer::from_category(name)
                        .ok_or_else(|| format!("unknown category `{name}`"))?;
                    a.llm_by_category[fixer.index()] = v.as_usize(name)?;
                }
            }
            "llm_uncategorized" => a.llm_uncategorized = val.as_usize(key)?,
            other => return Err(format!("unknown attribution field `{other}`")),
        }
    }
    Ok(a)
}

/// Serialize a [`StageMetrics`] snapshot to a JSON object string.
///
/// Stages, fixers, counters, and gauges are keyed by their stable names
/// ([`Stage::name`] etc.) and written in declaration order, so equal snapshots
/// always produce byte-identical text; an unset gauge is written as `null`.
pub fn metrics_to_json(m: &StageMetrics) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    write!(out, "\"clock\":{},", escape(m.clock.name())).unwrap();
    out.push_str("\"stages\":{");
    for (i, stage) in Stage::REPORT.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = m.stage(stage);
        write!(
            out,
            "{}:{{\"calls\":{},\"latency\":{}}}",
            escape(stage.name()),
            s.calls,
            histogram_to_json(&s.latency)
        )
        .unwrap();
    }
    out.push_str("},\"fixers\":{");
    for (i, fixer) in Fixer::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let f = m.fixer(fixer);
        write!(
            out,
            "{}:{{\"hits\":{},\"successes\":{}}}",
            escape(fixer.name()),
            f.hits,
            f.successes
        )
        .unwrap();
    }
    out.push_str("},\"counters\":{");
    for (i, counter) in Counter::REPORT.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}:{}", escape(counter.name()), m.counter(counter)).unwrap();
    }
    out.push_str("},\"gauges\":{");
    for (i, gauge) in Gauge::REPORT.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match m.gauge(gauge) {
            Some(v) => write!(out, "{}:{}", escape(gauge.name()), v).unwrap(),
            None => write!(out, "{}:null", escape(gauge.name())).unwrap(),
        }
    }
    out.push_str("}}");
    out
}

fn histogram_to_json(h: &Histogram) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"buckets\":[");
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{b}").unwrap();
    }
    write!(out, "],\"count\":{},\"sum\":{},\"max\":{}}}", h.count, h.sum, h.max).unwrap();
    out
}

fn bucket_to_json(b: &Bucket) -> String {
    format!("{{\"n\":{},\"em\":{},\"ex\":{},\"ts\":{}}}", b.n, b.em, b.ex, b.ts)
}

/// Parse a report written by [`report_to_json`] (or any equivalent JSON object;
/// field order does not matter, unknown fields are rejected).
///
/// A document without `schema_version` is read as v1 (no per-example
/// outcomes); a version newer than [`REPORT_SCHEMA_VERSION`] is rejected so
/// archives written by a future binary fail loudly instead of decoding wrong.
pub fn report_from_json(text: &str) -> Result<EvalReport, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    let obj = value.as_object("report")?;
    // Validate the version before anything else so a future archive produces
    // "unsupported schema_version", not "unknown field".
    if let Some(v) = obj.get("schema_version") {
        let v = v.as_u64("schema_version")?;
        if v == 0 || v > REPORT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported report schema_version {v}; this binary reads versions 1..={REPORT_SCHEMA_VERSION}"
            ));
        }
    }
    let mut report = EvalReport {
        system: String::new(),
        split: String::new(),
        overall: Bucket::default(),
        by_hardness: [Bucket::default(); 4],
        avg_prompt_tokens: 0.0,
        avg_output_tokens: 0.0,
        has_ts: false,
        metrics: StageMetrics::default(),
        attribution: None,
        examples: Vec::new(),
    };
    for (key, val) in obj {
        match key.as_str() {
            "schema_version" => {}
            "system" => report.system = val.as_string("system")?,
            "split" => report.split = val.as_string("split")?,
            "overall" => report.overall = bucket_from_value(val, "overall")?,
            "by_hardness" => {
                let items = val.as_array("by_hardness")?;
                if items.len() != 4 {
                    return Err(format!("by_hardness has {} entries, expected 4", items.len()));
                }
                for (i, item) in items.iter().enumerate() {
                    report.by_hardness[i] = bucket_from_value(item, "by_hardness[i]")?;
                }
            }
            "avg_prompt_tokens" => report.avg_prompt_tokens = val.as_f64("avg_prompt_tokens")?,
            "avg_output_tokens" => report.avg_output_tokens = val.as_f64("avg_output_tokens")?,
            "has_ts" => report.has_ts = val.as_bool("has_ts")?,
            "metrics" => report.metrics = metrics_from_value(val)?,
            "attribution" => {
                report.attribution =
                    if val.is_null() { None } else { Some(attribution_from_value(val)?) }
            }
            "examples" => {
                let items = val.as_array("examples")?;
                report.examples = items
                    .iter()
                    .map(|item| ExampleOutcome::unpack(item.as_u64("examples[i]")?))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => return Err(format!("unknown report field `{other}`")),
        }
    }
    Ok(report)
}

/// Parse a standalone metrics document written by [`metrics_to_json`].
pub fn metrics_from_json(text: &str) -> Result<StageMetrics, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    metrics_from_value(&value)
}

fn metrics_from_value(value: &JsonValue) -> Result<StageMetrics, String> {
    let obj = value.as_object("metrics")?;
    let mut m = StageMetrics::default();
    for (key, val) in obj {
        match key.as_str() {
            "clock" => {
                let name = val.as_string("clock")?;
                m.clock =
                    Clock::from_name(&name).ok_or_else(|| format!("unknown clock `{name}`"))?;
            }
            "stages" => {
                for (name, stage_val) in val.as_object("stages")? {
                    let stage =
                        Stage::from_name(name).ok_or_else(|| format!("unknown stage `{name}`"))?;
                    let entry = &mut m.stages[stage.index()];
                    for (field, v) in stage_val.as_object(name)? {
                        match field.as_str() {
                            "calls" => entry.calls = v.as_u64(field)?,
                            "latency" => entry.latency = histogram_from_value(v, name)?,
                            other => return Err(format!("unknown stage field `{other}`")),
                        }
                    }
                }
            }
            "fixers" => {
                for (name, fixer_val) in val.as_object("fixers")? {
                    let fixer = Fixer::from_category(name)
                        .ok_or_else(|| format!("unknown fixer `{name}`"))?;
                    let entry = &mut m.fixers[fixer.index()];
                    for (field, v) in fixer_val.as_object(name)? {
                        match field.as_str() {
                            "hits" => entry.hits = v.as_u64(field)?,
                            "successes" => entry.successes = v.as_u64(field)?,
                            other => return Err(format!("unknown fixer field `{other}`")),
                        }
                    }
                }
            }
            "counters" => {
                for (name, v) in val.as_object("counters")? {
                    let counter = Counter::from_name(name)
                        .ok_or_else(|| format!("unknown counter `{name}`"))?;
                    m.counters.0[counter.index()] = v.as_u64(name)?;
                }
            }
            "gauges" => {
                for (name, v) in val.as_object("gauges")? {
                    let gauge =
                        Gauge::from_name(name).ok_or_else(|| format!("unknown gauge `{name}`"))?;
                    m.gauges[gauge.index()] = if v.is_null() {
                        GaugeSlot::default()
                    } else {
                        GaugeSlot { set: true, value: v.as_u64(name)? }
                    };
                }
            }
            other => return Err(format!("unknown metrics field `{other}`")),
        }
    }
    Ok(m)
}

fn histogram_from_value(value: &JsonValue, what: &str) -> Result<Histogram, String> {
    let obj = value.as_object(what)?;
    let mut h = Histogram::default();
    for (key, val) in obj {
        match key.as_str() {
            "buckets" => {
                let items = val.as_array("buckets")?;
                if items.len() != NUM_BUCKETS {
                    return Err(format!(
                        "{what}: histogram has {} buckets, expected {NUM_BUCKETS}",
                        items.len()
                    ));
                }
                for (i, item) in items.iter().enumerate() {
                    h.buckets[i] = item.as_u64("buckets[i]")?;
                }
            }
            "count" => h.count = val.as_u64(key)?,
            "sum" => h.sum = val.as_u64(key)?,
            "max" => h.max = val.as_u64(key)?,
            other => return Err(format!("unknown histogram field `{other}`")),
        }
    }
    Ok(h)
}

fn bucket_from_value(value: &JsonValue, what: &str) -> Result<Bucket, String> {
    let obj = value.as_object(what)?;
    let mut b = Bucket::default();
    for (key, val) in obj {
        let n = val.as_usize(key)?;
        match key.as_str() {
            "n" => b.n = n,
            "em" => b.em = n,
            "ex" => b.ex = n,
            "ts" => b.ts = n,
            other => return Err(format!("unknown bucket field `{other}`")),
        }
    }
    Ok(b)
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value tree. Numbers keep their source text so integer widths
/// and float precision are decided by the caller, not the parser.
pub(crate) enum JsonValue {
    Null,
    Str(String),
    Num(String),
    Bool(bool),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub(crate) fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, String> {
        match self {
            JsonValue::Object(m) => Ok(m),
            _ => Err(format!("{what}: expected object")),
        }
    }
    pub(crate) fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(v) => Ok(v),
            _ => Err(format!("{what}: expected array")),
        }
    }
    pub(crate) fn as_string(&self, what: &str) -> Result<String, String> {
        match self {
            JsonValue::Str(s) => Ok(s.clone()),
            _ => Err(format!("{what}: expected string")),
        }
    }
    pub(crate) fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(format!("{what}: expected bool")),
        }
    }
    pub(crate) fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Num(s) => s.parse().map_err(|e| format!("{what}: {e}")),
            _ => Err(format!("{what}: expected number")),
        }
    }
    pub(crate) fn as_usize(&self, what: &str) -> Result<usize, String> {
        match self {
            JsonValue::Num(s) => s.parse().map_err(|e| format!("{what}: {e}")),
            _ => Err(format!("{what}: expected integer")),
        }
    }
    pub(crate) fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            JsonValue::Num(s) => s.parse().map_err(|e| format!("{what}: {e}")),
            _ => Err(format!("{what}: expected integer")),
        }
    }
    pub(crate) fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

pub(crate) struct Parser<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl Parser<'_> {
    pub(crate) fn parse_document(mut self) -> Result<JsonValue, String> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing input at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != byte {
            return Err(format!(
                "expected `{}` at byte {}, got `{}`",
                byte as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(JsonValue::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", JsonValue::Bool(true)),
            b'f' => self.parse_keyword("false", JsonValue::Bool(false)),
            b'n' => self.parse_keyword("null", JsonValue::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                c => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, got `{}`",
                        self.pos, c as char
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                c => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, got `{}`",
                        self.pos, c as char
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let len = utf8_len(b)?;
                    let start = self.pos - 1;
                    let chunk =
                        self.bytes.get(start..start + len).ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a value at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        // Validate it is a number now so type errors surface at parse time.
        text.parse::<f64>().map_err(|e| format!("bad number `{text}`: {e}"))?;
        Ok(JsonValue::Num(text.to_string()))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        other => Err(format!("invalid UTF-8 lead byte {other:#x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EvalReport {
        EvalReport {
            system: "PURPLE (\"quoted\" \\ name)\n".into(),
            split: "dev — Spider".into(),
            overall: Bucket { n: 100, em: 77, ex: 81, ts: 79 },
            by_hardness: [
                Bucket { n: 25, em: 24, ex: 25, ts: 25 },
                Bucket { n: 35, em: 28, ex: 30, ts: 29 },
                Bucket { n: 25, em: 17, ex: 18, ts: 17 },
                Bucket { n: 15, em: 8, ex: 8, ts: 8 },
            ],
            avg_prompt_tokens: 5990.333333333333,
            avg_output_tokens: 27.49,
            has_ts: true,
            metrics: sample_metrics(),
            attribution: None,
            examples: vec![
                ExampleOutcome { em: true, ex: true, ts: true, hardness: 0 },
                ExampleOutcome { em: false, ex: true, ts: false, hardness: 3 },
                ExampleOutcome { em: false, ex: false, ts: false, hardness: 1 },
            ],
        }
    }

    fn sample_attribution() -> AttributionReport {
        let mut a = AttributionReport { total: 100, ex_correct: 81, ..Default::default() };
        a.counts[Blame::PruningRecallMiss.index()] = 3;
        a.counts[Blame::SkeletonTopKMiss.index()] = 4;
        a.counts[Blame::LlmHallucination.index()] = 10;
        a.counts[Blame::VoteMisselection.index()] = 2;
        a.llm_by_category[Fixer::MissingTable.index()] = 6;
        a.llm_uncategorized = 4;
        a
    }

    fn sample_metrics() -> StageMetrics {
        let mut m = StageMetrics::default();
        m.observe(Stage::SchemaPruning, 12);
        m.observe(Stage::LlmCall, 4096);
        m.observe(Stage::LlmCall, u64::MAX); // exercises the overflow bucket
        m.count(Counter::LlmCalls, 2);
        m.count(Counter::PromptTokens, 4100);
        m.record_fix(Fixer::MissingTable, true);
        m.record_fix(Fixer::SchemaHallucination, false);
        m.set_gauge(Gauge::DemosInPrompt, 4);
        // PoolSize left unset: serialized as null.
        m
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let report = sample();
        let json = report_to_json(&report);
        assert!(json.contains("\"attribution\":null"), "absent attribution is null: {json}");
        assert!(
            json.starts_with(&format!("{{\"schema_version\":{REPORT_SCHEMA_VERSION},")),
            "version leads the document: {json}"
        );
        let back = report_from_json(&json).expect("parses");
        assert_eq!(report, back);
    }

    #[test]
    fn schema_versioning_accepts_v1_and_rejects_future() {
        // A v1 document (no schema_version, no examples) still parses.
        let report = sample();
        let mut v1 = report_to_json(&report);
        v1 = v1.replace(&format!("\"schema_version\":{REPORT_SCHEMA_VERSION},"), "");
        let examples_field = {
            let start = v1.find("\"examples\":").expect("examples field present");
            v1[start..v1.len() - 1].to_string() // up to the closing brace
        };
        v1 = v1.replace(&format!(",{examples_field}"), "");
        let back = report_from_json(&v1).expect("v1 parses");
        assert!(back.examples.is_empty(), "v1 has no per-example outcomes");
        assert_eq!(back.overall, report.overall);
        // An explicit v1 tag is accepted too.
        let tagged = format!("{{\"schema_version\":1,{}", &v1[1..]);
        assert!(report_from_json(&tagged).is_ok(), "explicit v1 parses");
        // Future versions are rejected with a descriptive error, not a field error.
        let future = report_to_json(&report).replace(
            &format!("\"schema_version\":{REPORT_SCHEMA_VERSION}"),
            "\"schema_version\":99",
        );
        let err = report_from_json(&future).unwrap_err();
        assert!(err.contains("unsupported report schema_version 99"), "{err}");
        assert!(err.contains(&format!("1..={REPORT_SCHEMA_VERSION}")), "{err}");
        // Version 0 is nonsense.
        let zero = report_to_json(&report).replace(
            &format!("\"schema_version\":{REPORT_SCHEMA_VERSION}"),
            "\"schema_version\":0",
        );
        assert!(report_from_json(&zero).is_err());
    }

    #[test]
    fn example_outcomes_pack_and_reject_bad_values() {
        for v in 0..32u64 {
            assert_eq!(ExampleOutcome::unpack(v).unwrap().pack(), v);
        }
        assert!(ExampleOutcome::unpack(32).is_err(), "hardness 4 is out of range");
        let json = report_to_json(&sample()).replace("\"examples\":[", "\"examples\":[255,");
        assert!(report_from_json(&json).is_err());
    }

    #[test]
    fn attribution_round_trips_standalone_and_in_reports() {
        let attribution = sample_attribution();
        let json = attribution_to_json(&attribution);
        let back = attribution_from_json(&json).expect("parses");
        assert_eq!(attribution, back);
        assert_eq!(json, attribution_to_json(&back), "re-serialization is byte-identical");
        assert!(attribution_from_json("{\"counts\":{\"warp-core-breach\":1}}").is_err());
        assert!(attribution_from_json("{\"bogus\":1}").is_err());

        let mut report = sample();
        report.attribution = Some(attribution);
        let json = report_to_json(&report);
        let back = report_from_json(&json).expect("parses");
        assert_eq!(report, back);
        assert_eq!(json, report_to_json(&back));
    }

    #[test]
    fn round_trip_is_idempotent_text() {
        let json = report_to_json(&sample());
        let again = report_to_json(&report_from_json(&json).unwrap());
        assert_eq!(json, again);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(report_from_json("").is_err());
        assert!(report_from_json("{").is_err());
        assert!(report_from_json("[]").is_err());
        assert!(report_from_json("{\"system\":1}").is_err());
        assert!(report_from_json("{\"bogus\":true}").is_err());
        let json = report_to_json(&sample());
        assert!(report_from_json(&format!("{json}x")).is_err(), "trailing input");
    }

    #[test]
    fn accepts_whitespace_and_field_reordering() {
        let json = "{ \"has_ts\": false, \"system\": \"s\", \"split\": \"d\",\n \
                    \"overall\": {\"n\":1,\"em\":0,\"ex\":1,\"ts\":0},\n \
                    \"by_hardness\": [{\"n\":1,\"em\":0,\"ex\":1,\"ts\":0},{},{},{}],\n \
                    \"avg_prompt_tokens\": 1.5, \"avg_output_tokens\": 2 }";
        // Empty bucket objects default all counters to zero; a report with no
        // metrics section defaults to an empty snapshot.
        let report = report_from_json(json).expect("parses");
        assert_eq!(report.overall.ex, 1);
        assert_eq!(report.by_hardness[1], Bucket::default());
        assert_eq!(report.avg_prompt_tokens, 1.5);
        assert_eq!(report.avg_output_tokens, 2.0);
        assert!(report.metrics.is_empty());
    }

    #[test]
    fn metrics_round_trip_preserves_every_field() {
        let metrics = sample_metrics();
        let json = metrics_to_json(&metrics);
        assert!(json.contains("\"pool_size\":null"), "unset gauge is null: {json}");
        let back = metrics_from_json(&json).expect("parses");
        assert_eq!(metrics, back);
        assert_eq!(json, metrics_to_json(&back), "re-serialization is byte-identical");
    }

    #[test]
    fn metrics_rejects_unknown_names() {
        assert!(metrics_from_json("{\"stages\":{\"warp-drive\":{}}}").is_err());
        assert!(metrics_from_json("{\"counters\":{\"bogus\":1}}").is_err());
        assert!(metrics_from_json("{\"clock\":\"sundial\"}").is_err());
        assert!(
            metrics_from_json("{\"stages\":{\"llm-call\":{\"latency\":{\"buckets\":[1,2]}}}}")
                .is_err(),
            "wrong bucket count"
        );
    }
}
