//! State-scored evaluation of NL→DML translations (DESIGN.md §15).
//!
//! The classic harness scores a prediction by comparing *result sets*; a write
//! has no result set, so the DML scenario family scores by the *database state
//! a statement leaves behind*. Every example is applied to a pristine clone of
//! its database — the canonical benchmark databases are never mutated — and
//! the metrics translate as:
//!
//! * **EM** — canonical-statement equality ([`sqlkit::exact_set_match_statement`]).
//! * **EX** — the predicted statement is the same statement class (read vs.
//!   write) and leaves the database at the same post-write fingerprint as the
//!   gold statement. For read draws this is ordinary execution match.
//! * **TS** — EX *and* the affected-row count matches, catching predictions
//!   that converge on the right state by touching the wrong number of rows
//!   (e.g. a `DELETE` that removes and re-creates the state of a no-op).
//!
//! Hardness buckets reuse the four read levels by statement kind: insert=0,
//! delete=1, update=2, upsert=3; read draws keep their query hardness.
//!
//! Scoring is a pure function of (database, gold, prediction): reports are
//! byte-identical across worker counts, engines, and cache configurations,
//! so DML reports flow through the registry / diff / gate machinery exactly
//! like SELECT reports.

use crate::harness::{assemble, seed_for, EvalReport, ExampleScore, Translation};
use engine::{Database, ExecSession, StatementOutcome, WriteOutcome};
use obs::{Counter, Stage, StageMetrics};
use spidergen::{StatementKind, WriteBenchmark, WriteExample};
use sqlkit::{exact_set_match_statement, Statement};

/// One unit of DML translation work, the write-path analog of
/// [`crate::harness::Job`].
#[derive(Debug, Clone, Copy)]
pub struct DmlJob<'a> {
    /// Position of the example within its split; all per-run randomness must
    /// derive from this via [`seed_for`].
    pub idx: usize,
    /// The example to translate.
    pub example: &'a WriteExample,
    /// The (pristine) database the example targets.
    pub db: &'a Database,
}

impl DmlJob<'_> {
    /// The RNG seed for this job.
    pub fn seed(&self, base: u64) -> u64 {
        seed_for(base, self.idx)
    }
}

/// An NL→DML system under evaluation. Like [`crate::harness::Translator`],
/// `run` takes `&self` and must be a pure function of the job.
pub trait StatementTranslator {
    /// Display name.
    fn name(&self) -> String;
    /// Translate one job into statement text.
    fn run(&self, job: DmlJob<'_>) -> Translation;
}

/// Echoes the gold statement text — upper bound and self-check for the
/// state-scored harness.
pub struct DmlOracle;

impl StatementTranslator for DmlOracle {
    fn name(&self) -> String {
        "Oracle (gold echo)".into()
    }
    fn run(&self, job: DmlJob<'_>) -> Translation {
        Translation { sql: job.example.sql.clone(), prompt_tokens: 0, output_tokens: 0 }
    }
}

/// Hardness bucket of an example, by statement kind (reads keep their query
/// hardness).
pub fn dml_hardness(ex: &WriteExample) -> usize {
    match ex.kind {
        StatementKind::Insert => 0,
        StatementKind::Delete => 1,
        StatementKind::Update => 2,
        StatementKind::Upsert => 3,
        StatementKind::Read => match &ex.statement {
            Statement::Select(q) => sqlkit::hardness(q) as usize,
            _ => 0,
        },
    }
}

/// Apply a write statement to a clone of `db` through the session, returning
/// the outcome. `None` when the statement fails to prepare.
fn apply_to_clone(session: &ExecSession, db: &Database, stmt: &Statement) -> Option<WriteOutcome> {
    let mut scratch = db.clone();
    match session.apply(&mut scratch, stmt) {
        Ok(StatementOutcome::Write(outcome)) => Some(outcome),
        _ => None,
    }
}

fn score_dml(
    t: Translation,
    ex: &WriteExample,
    db: &Database,
    session: &ExecSession,
) -> ExampleScore {
    let hardness = dml_hardness(ex);
    let mut metrics = StageMetrics::default();
    let predicted = session.parse_statement(&t.sql);
    let (em, ex_hit, ts) = match &ex.statement {
        // Read draws score exactly like the classic harness.
        Statement::Select(gold) => {
            let sdb = session.bind(db);
            let em = crate::metrics::em_match_str(&t.sql, gold, &db.schema);
            let ex_hit = crate::metrics::ex_match_str_with(&sdb, &t.sql, gold);
            (em, ex_hit, ex_hit)
        }
        gold => {
            let gold_outcome =
                apply_to_clone(session, db, gold).expect("gold DML statements always apply");
            metrics.observe(Stage::WriteExec, gold_outcome.rows_affected);
            metrics.count(Counter::RowsInserted, gold_outcome.rows_inserted);
            metrics.count(Counter::RowsUpdated, gold_outcome.rows_updated);
            metrics.count(Counter::RowsDeleted, gold_outcome.rows_deleted);
            metrics.count(Counter::ConflictHits, gold_outcome.conflict_hits);
            match predicted.as_deref() {
                Some(pred) => {
                    let em = exact_set_match_statement(pred, gold, &db.schema);
                    // A read prediction never scores state match: it trivially
                    // preserves state, which would false-positive on no-op
                    // golds (e.g. a DO NOTHING upsert that conflicts).
                    let outcome =
                        if pred.is_write() { apply_to_clone(session, db, pred) } else { None };
                    let ex_hit =
                        outcome.map(|o| o.fingerprint == gold_outcome.fingerprint).unwrap_or(false);
                    let ts = ex_hit
                        && outcome
                            .map(|o| o.rows_affected == gold_outcome.rows_affected)
                            .unwrap_or(false);
                    (em, ex_hit, ts)
                }
                None => (false, false, false),
            }
        }
    };
    ExampleScore {
        prompt_tokens: t.prompt_tokens,
        output_tokens: t.output_tokens,
        em,
        ex: ex_hit,
        ts,
        hardness,
        metrics,
    }
}

/// Evaluate an NL→DML translator over a profile-driven split; serial path.
///
/// The resulting [`EvalReport`] has the standard shape (`has_ts` is always
/// set: affected-row checks need no distilled suites), so it archives, diffs
/// and gates like any SELECT report.
pub fn evaluate_dml(
    translator: &dyn StatementTranslator,
    bench: &WriteBenchmark,
    session: &ExecSession,
) -> EvalReport {
    let scores = bench.examples.iter().enumerate().map(|(idx, ex)| {
        let db = bench.db_of(ex);
        score_dml(translator.run(DmlJob { idx, example: ex, db }), ex, db, session)
    });
    assemble(translator.name(), bench.name.clone(), scores, bench.examples.len(), true)
}

/// [`evaluate_dml`] across up to `jobs` worker threads. Scores fold in example
/// order, so the report is identical to the serial one for any `jobs` count.
pub fn evaluate_dml_par(
    translator: &(dyn StatementTranslator + Sync),
    bench: &WriteBenchmark,
    session: &ExecSession,
    jobs: usize,
) -> EvalReport {
    let n = bench.examples.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 || n < 2 {
        return evaluate_dml(translator, bench, session);
    }
    let mut scores: Vec<Option<ExampleScore>> = Vec::with_capacity(n);
    scores.resize_with(n, || None);
    let chunk = n.div_ceil(jobs);
    crossbeam::thread::scope(|scope| {
        for (ci, out) in scores.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            scope.spawn(move |_| {
                for (off, slot) in out.iter_mut().enumerate() {
                    let idx = start + off;
                    let ex = &bench.examples[idx];
                    let db = bench.db_of(ex);
                    *slot = Some(score_dml(
                        translator.run(DmlJob { idx, example: ex, db }),
                        ex,
                        db,
                        session,
                    ));
                }
            });
        }
    })
    .expect("evaluation worker panicked");
    assemble(
        translator.name(),
        bench.name.clone(),
        scores.into_iter().map(|s| s.expect("all examples scored")),
        n,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spidergen::dbgen::{instantiate, PerturbConfig};
    use spidergen::domains::train_domains;
    use spidergen::{generate_write_split, QueryProfile};

    fn dml_split(seed: u64, n: usize) -> WriteBenchmark {
        let templates = train_domains();
        let mut rng = StdRng::seed_from_u64(seed);
        let gdbs: Vec<_> = (0..4)
            .map(|i| {
                let t = &templates[i % templates.len()];
                instantiate(t, &format!("{}_{}", t.name, i), &mut rng, PerturbConfig::default())
            })
            .collect();
        generate_write_split("dml", &gdbs, &QueryProfile::mixed_dml(), n, &mut rng)
    }

    #[test]
    fn oracle_scores_100_on_state_metrics() {
        let bench = dml_split(31, 40);
        let report = evaluate_dml(&DmlOracle, &bench, &ExecSession::disabled());
        assert_eq!(report.overall.em_pct(), 100.0, "EM");
        assert_eq!(report.overall.ex_pct(), 100.0, "EX");
        assert_eq!(report.overall.ts_pct(), 100.0, "TS");
        assert!(report.has_ts);
        assert_eq!(report.overall.n, 40);
    }

    #[test]
    fn canonical_databases_stay_pristine() {
        let bench = dml_split(33, 30);
        let before: Vec<u128> = bench.databases.iter().map(|d| d.fingerprint()).collect();
        evaluate_dml(&DmlOracle, &bench, &ExecSession::disabled());
        let after: Vec<u128> = bench.databases.iter().map(|d| d.fingerprint()).collect();
        assert_eq!(before, after, "scoring must never mutate the benchmark databases");
    }

    #[test]
    fn garbage_translator_scores_zero() {
        struct Garbage;
        impl StatementTranslator for Garbage {
            fn name(&self) -> String {
                "garbage".into()
            }
            fn run(&self, _job: DmlJob<'_>) -> Translation {
                Translation { sql: "DELETE FROM".into(), prompt_tokens: 5, output_tokens: 1 }
            }
        }
        let bench = dml_split(35, 20);
        let report = evaluate_dml(&Garbage, &bench, &ExecSession::disabled());
        assert_eq!(report.overall.em_pct(), 0.0);
        assert_eq!(report.overall.ex_pct(), 0.0);
        assert_eq!(report.overall.ts_pct(), 0.0);
        assert_eq!(report.avg_prompt_tokens, 5.0);
    }

    #[test]
    fn read_prediction_never_matches_a_noop_write() {
        // A DO NOTHING upsert that conflicts leaves the state unchanged, just
        // like any SELECT would. State equality alone would score such a read
        // prediction EX=1; the statement-class guard must keep it at 0.
        struct Reader;
        impl StatementTranslator for Reader {
            fn name(&self) -> String {
                "reader".into()
            }
            fn run(&self, job: DmlJob<'_>) -> Translation {
                let table = job.example.statement.target_table().unwrap_or("t");
                Translation {
                    sql: format!("SELECT COUNT(*) FROM {table}"),
                    prompt_tokens: 0,
                    output_tokens: 0,
                }
            }
        }
        let bench = dml_split(37, 40);
        let has_noop_upsert = bench.examples.iter().any(|e| e.kind == StatementKind::Upsert);
        assert!(has_noop_upsert, "split should include upserts");
        let report = evaluate_dml(&Reader, &bench, &ExecSession::disabled());
        let write_ex: usize = report
            .examples
            .iter()
            .zip(&bench.examples)
            .filter(|(o, e)| e.kind != StatementKind::Read && o.ex)
            .count();
        assert_eq!(write_ex, 0, "read predictions must not score EX on writes");
    }

    /// Echoes gold on even seeds, emits a near-miss write otherwise, so the
    /// score pattern is sensitive to example position.
    struct IdxSensitive;
    impl StatementTranslator for IdxSensitive {
        fn name(&self) -> String {
            "idx-sensitive".into()
        }
        fn run(&self, job: DmlJob<'_>) -> Translation {
            let seed = job.seed(0x5eed);
            let sql = if seed.is_multiple_of(2) {
                job.example.sql.clone()
            } else {
                let table = job.example.statement.target_table().unwrap_or("t");
                format!("DELETE FROM {table} WHERE 1 = 2")
            };
            Translation { sql, prompt_tokens: seed % 89, output_tokens: seed % 11 }
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial_for_any_job_count() {
        let bench = dml_split(39, 50);
        let session = ExecSession::shared();
        let serial = evaluate_dml(&IdxSensitive, &bench, &session);
        for jobs in [1, 2, 4, 33] {
            let par = evaluate_dml_par(&IdxSensitive, &bench, &session, jobs);
            assert_eq!(serial, par, "jobs={jobs}");
        }
    }

    #[test]
    fn reports_are_identical_across_engines_and_cache_configs() {
        let bench = dml_split(41, 40);
        let base = evaluate_dml(&IdxSensitive, &bench, &ExecSession::disabled());
        for session in [ExecSession::shared(), ExecSession::shared_legacy()] {
            let r = evaluate_dml_par(&IdxSensitive, &bench, &session, 4);
            assert_eq!(base, r, "mode={:?}", session.mode());
        }
    }

    #[test]
    fn hardness_buckets_follow_statement_kind() {
        let bench = dml_split(43, 60);
        let report = evaluate_dml(&DmlOracle, &bench, &ExecSession::disabled());
        for (outcome, ex) in report.examples.iter().zip(&bench.examples) {
            assert_eq!(outcome.hardness as usize, dml_hardness(ex));
        }
        // The mixed profile covers every write kind, so every bucket is hit.
        let with_rows: usize = report.by_hardness.iter().filter(|b| b.n > 0).count();
        assert_eq!(with_rows, 4, "all four hardness buckets populated");
    }

    #[test]
    fn dml_reports_round_trip_through_the_report_codec() {
        let bench = dml_split(45, 30);
        let report = evaluate_dml(&IdxSensitive, &bench, &ExecSession::shared());
        let json = crate::reportio::report_to_json(&report);
        let back = crate::reportio::report_from_json(&json).expect("decodes");
        assert_eq!(back.overall, report.overall);
        assert_eq!(back.examples, report.examples);
        assert_eq!(back.split, "dml");
    }
}
