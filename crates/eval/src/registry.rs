//! Persistent run registry (DESIGN.md §11): an append-only on-disk archive of
//! evaluation runs.
//!
//! Layout under the registry root:
//!
//! ```text
//! <root>/
//!   index.tsv            # one line per archived run, append-only
//!   <run-id>/
//!     manifest.json      # who/what/when: config fingerprint, seed, profile, …
//!     report.json        # reportio-encoded EvalReport (schema v2)
//! ```
//!
//! Run ids are deterministic: an FNV-1a-64 hash of the manifest's *identity*
//! fields (system, split, scale, seed, profile, config fingerprint, schema
//! version) — deliberately excluding `jobs` and `git_rev`, so the same logical
//! configuration always maps to the same id regardless of worker count or
//! checkout. Re-recording an identical run is a no-op; re-recording a run id
//! with *different* content is an error (the archive is append-only).

use crate::harness::EvalReport;
use crate::reportio::{self, escape, Parser};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Everything that identifies and describes one archived run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// The evaluated system's display name.
    pub system: String,
    /// Split the run evaluated.
    pub split: String,
    /// Experiment scale ("tiny" / "medium" / "full").
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// Worker threads used (informational; never part of the run id).
    pub jobs: usize,
    /// LLM profile name ("ChatGPT" / "GPT4").
    pub profile: String,
    /// Fingerprint of the full pipeline configuration (hex).
    pub config_fingerprint: String,
    /// Git revision of the producing checkout, or "unknown".
    pub git_rev: String,
    /// Report schema version the archive was written with.
    pub schema_version: u64,
    /// Examples evaluated.
    pub examples: usize,
}

impl RunManifest {
    /// The deterministic run id for this manifest: `run-` + 16 hex digits of
    /// FNV-1a-64 over the identity fields (excludes `jobs` and `git_rev`).
    pub fn run_id(&self) -> String {
        let mut h = Fnv64::new();
        for part in [
            self.system.as_str(),
            self.split.as_str(),
            self.scale.as_str(),
            self.profile.as_str(),
            self.config_fingerprint.as_str(),
        ] {
            h.update(part.as_bytes());
            h.update(&[0xff]); // field separator
        }
        h.update(&self.seed.to_le_bytes());
        h.update(&self.schema_version.to_le_bytes());
        format!("run-{:016x}", h.finish())
    }

    /// Serialize to JSON (hand-rolled, like every report artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        let _ = write!(out, "\"run_id\":{},", escape(&self.run_id()));
        let _ = write!(out, "\"system\":{},", escape(&self.system));
        let _ = write!(out, "\"split\":{},", escape(&self.split));
        let _ = write!(out, "\"scale\":{},", escape(&self.scale));
        let _ = write!(out, "\"seed\":{},", self.seed);
        let _ = write!(out, "\"jobs\":{},", self.jobs);
        let _ = write!(out, "\"profile\":{},", escape(&self.profile));
        let _ = write!(out, "\"config_fingerprint\":{},", escape(&self.config_fingerprint));
        let _ = write!(out, "\"git_rev\":{},", escape(&self.git_rev));
        let _ = write!(out, "\"schema_version\":{},", self.schema_version);
        let _ = write!(out, "\"examples\":{}", self.examples);
        out.push('}');
        out
    }

    /// Parse a manifest written by [`RunManifest::to_json`]. The stored
    /// `run_id` is checked against the recomputed one so a hand-edited archive
    /// fails loudly.
    pub fn from_json(text: &str) -> Result<RunManifest, String> {
        let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
        let obj = value.as_object("manifest")?;
        let mut m = RunManifest {
            system: String::new(),
            split: String::new(),
            scale: String::new(),
            seed: 0,
            jobs: 0,
            profile: String::new(),
            config_fingerprint: String::new(),
            git_rev: String::new(),
            schema_version: 1,
            examples: 0,
        };
        let mut stored_id = None;
        let mut seen: Vec<String> = Vec::new();
        for (key, val) in obj {
            seen.push(key.clone());
            match key.as_str() {
                "run_id" => stored_id = Some(val.as_string(key)?),
                "system" => m.system = val.as_string(key)?,
                "split" => m.split = val.as_string(key)?,
                "scale" => m.scale = val.as_string(key)?,
                "seed" => m.seed = val.as_u64(key)?,
                "jobs" => m.jobs = val.as_usize(key)?,
                "profile" => m.profile = val.as_string(key)?,
                "config_fingerprint" => m.config_fingerprint = val.as_string(key)?,
                "git_rev" => m.git_rev = val.as_string(key)?,
                "schema_version" => m.schema_version = val.as_u64(key)?,
                "examples" => m.examples = val.as_usize(key)?,
                other => return Err(format!("unknown manifest field `{other}`")),
            }
        }
        // `run_id` and every identity field must be present: a manifest
        // missing `run_id` would silently skip the tamper check below, and a
        // missing identity field would hash into a default instead of failing.
        for required in [
            "run_id",
            "system",
            "split",
            "scale",
            "seed",
            "profile",
            "config_fingerprint",
            "schema_version",
        ] {
            if !seen.iter().any(|k| k == required) {
                return Err(format!("manifest is missing required field `{required}`"));
            }
        }
        let id = stored_id.expect("run_id presence checked above");
        if id != m.run_id() {
            return Err(format!(
                "manifest run_id `{id}` does not match its contents (expected `{}`)",
                m.run_id()
            ));
        }
        Ok(m)
    }
}

/// FNV-1a 64-bit, the same family the engine uses for database fingerprints.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint arbitrary configuration text (e.g. a `Debug` rendering of
/// `PurpleConfig`) into 16 hex digits.
pub fn fingerprint(text: &str) -> String {
    let mut h = Fnv64::new();
    h.update(text.as_bytes());
    format!("{:016x}", h.finish())
}

/// Best-effort git revision of a checkout: resolves `.git/HEAD` (following one
/// level of `ref:` indirection) without invoking git. `None` when the
/// directory is not a git checkout.
pub fn git_rev(repo_root: &Path) -> Option<String> {
    let head = fs::read_to_string(repo_root.join(".git/HEAD")).ok()?;
    let head = head.trim();
    if let Some(r) = head.strip_prefix("ref: ") {
        let direct = fs::read_to_string(repo_root.join(r)).ok();
        if let Some(rev) = direct {
            return Some(rev.trim().to_string());
        }
        // Packed refs fallback: exact ref-name match only, skipping comment
        // (`#`) and peeled-tag (`^`) lines — a suffix match could hand back
        // the revision of a different ref whose name merely ends with ours.
        let packed = fs::read_to_string(repo_root.join(".git/packed-refs")).ok()?;
        for line in packed.lines() {
            if line.starts_with('#') || line.starts_with('^') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rev), Some(name)) = (parts.next(), parts.next()) {
                if name == r {
                    return Some(rev.to_string());
                }
            }
        }
        return None;
    }
    Some(head.to_string())
}

/// An on-disk, append-only archive of evaluation runs.
#[derive(Debug, Clone)]
pub struct RunRegistry {
    root: PathBuf,
}

impl RunRegistry {
    /// Open (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<RunRegistry, String> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create registry at {}: {e}", root.display()))?;
        Ok(RunRegistry { root })
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.tsv")
    }

    fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join(run_id)
    }

    /// Archive one run. Returns its deterministic run id.
    ///
    /// Re-recording a run whose report is byte-identical is a no-op — the
    /// first-written manifest stands, so informational fields the run id
    /// deliberately ignores (`jobs`, `git_rev`) keep the values of the run
    /// that archived first. A run id whose stored report differs from the new
    /// one is an error — the archive never silently rewrites history.
    pub fn record(&self, manifest: &RunManifest, report: &EvalReport) -> Result<String, String> {
        let run_id = manifest.run_id();
        let dir = self.run_dir(&run_id);
        let manifest_json = manifest.to_json();
        let report_json = reportio::report_to_json(report);
        // `create_dir` (not `create_dir_all`) is the atomicity point: of two
        // concurrent writers racing on the same run id, exactly one creates
        // the directory and owns the manifest/report/index writes; the other
        // lands in the already-exists branch below.
        match fs::create_dir(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let old_manifest = fs::read_to_string(dir.join("manifest.json")).map_err(|e| {
                    format!("run {run_id} exists but its manifest is unreadable: {e}")
                })?;
                let old = RunManifest::from_json(&old_manifest)
                    .map_err(|e| format!("run {run_id} exists but its manifest is invalid: {e}"))?;
                let old_report = fs::read_to_string(dir.join("report.json")).map_err(|e| {
                    format!("run {run_id} exists but its report is unreadable: {e}")
                })?;
                if old.run_id() == run_id && old_report == report_json {
                    // Idempotent re-archive. A crash between the run-directory
                    // write and the index append leaves the run unreachable
                    // (resolve/load/list consult only the index), so heal the
                    // missing line here instead of silently succeeding.
                    if !self.run_ids()?.iter().any(|id| id == &run_id) {
                        self.append_index(&old)?;
                    }
                    return Ok(run_id);
                }
                return Err(format!(
                    "run {run_id} is already archived with different content; \
                     the registry is append-only (did the toolchain or data generator change?)"
                ));
            }
            Err(e) => return Err(format!("cannot create {}: {e}", dir.display())),
        }
        fs::write(dir.join("manifest.json"), &manifest_json)
            .map_err(|e| format!("cannot write manifest for {run_id}: {e}"))?;
        fs::write(dir.join("report.json"), &report_json)
            .map_err(|e| format!("cannot write report for {run_id}: {e}"))?;
        // Append to the index last, so a crash mid-record never leaves an
        // index entry pointing at a half-written run.
        self.append_index(manifest)?;
        Ok(run_id)
    }

    fn append_index(&self, manifest: &RunManifest) -> Result<(), String> {
        let line = format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            manifest.run_id(),
            tsv(&manifest.system),
            tsv(&manifest.split),
            tsv(&manifest.scale),
            manifest.seed,
            tsv(&manifest.profile),
            manifest.config_fingerprint
        );
        let mut index = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.index_path())
            .map_err(|e| format!("cannot open index: {e}"))?;
        use std::io::Write as _;
        index.write_all(line.as_bytes()).map_err(|e| format!("cannot append to index: {e}"))
    }

    /// Load an archived run. `run_id` may be a full id, a unique `run-` prefix,
    /// or the literal `latest` (most recently appended index entry).
    pub fn load(&self, run_id: &str) -> Result<(RunManifest, EvalReport), String> {
        let run_id = self.resolve(run_id)?;
        let dir = self.run_dir(&run_id);
        let manifest_text = fs::read_to_string(dir.join("manifest.json"))
            .map_err(|e| format!("run {run_id}: cannot read manifest: {e}"))?;
        let manifest = RunManifest::from_json(&manifest_text)
            .map_err(|e| format!("run {run_id}: bad manifest: {e}"))?;
        let report_text = fs::read_to_string(dir.join("report.json"))
            .map_err(|e| format!("run {run_id}: cannot read report: {e}"))?;
        let report = reportio::report_from_json(&report_text)
            .map_err(|e| format!("run {run_id}: bad report: {e}"))?;
        Ok((manifest, report))
    }

    /// Resolve a user-supplied run reference to a concrete run id.
    pub fn resolve(&self, reference: &str) -> Result<String, String> {
        let ids = self.run_ids()?;
        if reference == "latest" {
            return ids
                .last()
                .cloned()
                .ok_or_else(|| format!("registry {} is empty", self.root.display()));
        }
        if ids.iter().any(|id| id == reference) {
            return Ok(reference.to_string());
        }
        let matches: Vec<&String> = ids.iter().filter(|id| id.starts_with(reference)).collect();
        match matches.len() {
            1 => Ok(matches[0].clone()),
            0 => Err(format!(
                "no archived run `{reference}` in {} (known: {})",
                self.root.display(),
                if ids.is_empty() { "none".to_string() } else { ids.join(", ") }
            )),
            _ => Err(format!("run reference `{reference}` is ambiguous: {matches:?}")),
        }
    }

    /// All archived run ids, in index (archival) order.
    pub fn run_ids(&self) -> Result<Vec<String>, String> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("cannot read index: {e}")),
        };
        let mut ids: Vec<String> = Vec::new();
        for id in text.lines().filter_map(|l| l.split('\t').next()) {
            if !id.is_empty() && !ids.iter().any(|seen| seen == id) {
                ids.push(id.to_string());
            }
        }
        Ok(ids)
    }

    /// Load every archived manifest, in index order.
    pub fn list(&self) -> Result<Vec<RunManifest>, String> {
        self.run_ids()?.iter().map(|id| self.load(id).map(|(m, _)| m)).collect()
    }
}

/// Flatten TSV-hostile characters out of an index field.
fn tsv(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Bucket, ExampleOutcome};
    use obs::StageMetrics;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("purple-registry-{tag}-{}-{n}", std::process::id()))
    }

    fn manifest() -> RunManifest {
        RunManifest {
            system: "PURPLE (ChatGPT)".into(),
            split: "dev".into(),
            scale: "tiny".into(),
            seed: 42,
            jobs: 4,
            profile: "ChatGPT".into(),
            config_fingerprint: fingerprint("cfg-debug-text"),
            git_rev: "deadbeef".into(),
            schema_version: reportio::REPORT_SCHEMA_VERSION,
            examples: 2,
        }
    }

    fn report() -> EvalReport {
        EvalReport {
            system: "PURPLE (ChatGPT)".into(),
            split: "dev".into(),
            overall: Bucket { n: 2, em: 1, ex: 2, ts: 0 },
            by_hardness: [Bucket::default(); 4],
            avg_prompt_tokens: 10.0,
            avg_output_tokens: 1.0,
            has_ts: false,
            metrics: StageMetrics::default(),
            attribution: None,
            examples: vec![
                ExampleOutcome { em: true, ex: true, ts: false, hardness: 0 },
                ExampleOutcome { em: false, ex: true, ts: false, hardness: 2 },
            ],
        }
    }

    #[test]
    fn run_id_is_deterministic_and_ignores_jobs_and_git_rev() {
        let m = manifest();
        let mut m2 = m.clone();
        m2.jobs = 1;
        m2.git_rev = "unknown".into();
        assert_eq!(m.run_id(), m2.run_id());
        let mut m3 = m.clone();
        m3.seed = 43;
        assert_ne!(m.run_id(), m3.run_id());
        let mut m4 = m.clone();
        m4.profile = "GPT4".into();
        assert_ne!(m.run_id(), m4.run_id());
        assert!(m.run_id().starts_with("run-"));
        assert_eq!(m.run_id().len(), 4 + 16);
    }

    #[test]
    fn manifest_json_round_trips_and_checks_id() {
        let m = manifest();
        let json = m.to_json();
        let back = RunManifest::from_json(&json).unwrap();
        assert_eq!(m, back);
        // Tampering with an identity field invalidates the stored run_id.
        let tampered = json.replace("\"seed\":42", "\"seed\":41");
        assert!(RunManifest::from_json(&tampered).unwrap_err().contains("does not match"));
    }

    #[test]
    fn record_load_list_and_idempotency() {
        let dir = scratch_dir("record");
        let reg = RunRegistry::open(&dir).unwrap();
        let (m, r) = (manifest(), report());
        let id = reg.record(&m, &r).unwrap();
        // Idempotent re-record, no duplicate index line.
        assert_eq!(reg.record(&m, &r).unwrap(), id);
        assert_eq!(reg.run_ids().unwrap(), vec![id.clone()]);
        // Same id, different content → append-only violation.
        let mut r2 = r.clone();
        r2.overall.ex = 1;
        assert!(reg.record(&m, &r2).unwrap_err().contains("append-only"));
        // Load round-trips, via full id, prefix, and `latest`.
        let (lm, lr) = reg.load(&id).unwrap();
        assert_eq!((lm.clone(), lr.clone()), (m.clone(), r.clone()));
        assert_eq!(reg.load(&id[..8]).unwrap().0, m);
        assert_eq!(reg.load("latest").unwrap().0, m);
        assert_eq!(reg.list().unwrap().len(), 1);
        // Unknown id errors descriptively.
        assert!(reg.load("run-ffffffffffffffff").unwrap_err().contains("no archived run"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_schema_archives_are_rejected_on_load() {
        let dir = scratch_dir("future");
        let reg = RunRegistry::open(&dir).unwrap();
        let (m, r) = (manifest(), report());
        let id = reg.record(&m, &r).unwrap();
        // Simulate an archive written by a future binary.
        let report_path = dir.join(&id).join("report.json");
        let text = fs::read_to_string(&report_path).unwrap();
        fs::write(&report_path, text.replace("\"schema_version\":2", "\"schema_version\":99"))
            .unwrap();
        let err = reg.load(&id).unwrap_err();
        assert!(err.contains("unsupported report schema_version 99"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_heals_index_line_lost_to_a_crash() {
        let dir = scratch_dir("heal");
        let reg = RunRegistry::open(&dir).unwrap();
        let (m, r) = (manifest(), report());
        let id = reg.record(&m, &r).unwrap();
        // Simulate a crash between the run-directory write and the index
        // append: the run directory exists but the index never saw it.
        fs::write(dir.join("index.tsv"), "").unwrap();
        assert!(reg.resolve(&id).is_err());
        // Re-recording the identical run must repair the index, not just
        // take the idempotent early return.
        assert_eq!(reg.record(&m, &r).unwrap(), id);
        assert_eq!(reg.run_ids().unwrap(), vec![id.clone()]);
        assert_eq!(reg.load("latest").unwrap().0, m);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_missing_required_fields_is_rejected() {
        let m = manifest();
        let json = m.to_json();
        // Without run_id the tamper check would be skipped entirely.
        let no_id = json.replace(&format!("\"run_id\":\"{}\",", m.run_id()), "");
        let err = RunManifest::from_json(&no_id).unwrap_err();
        assert!(err.contains("missing required field `run_id`"), "{err}");
        // A missing identity field must not silently default.
        let no_seed = json.replace("\"seed\":42,", "");
        let err = RunManifest::from_json(&no_seed).unwrap_err();
        assert!(err.contains("missing required field `seed`"), "{err}");
    }

    #[test]
    fn git_rev_packed_refs_requires_exact_ref_match() {
        let dir = scratch_dir("gitrev");
        fs::create_dir_all(dir.join(".git")).unwrap();
        fs::write(dir.join(".git/HEAD"), "ref: refs/heads/main\n").unwrap();
        // A branch whose name merely *ends* with the HEAD ref path comes
        // first, plus comment and peeled-tag lines; only the exact ref may
        // win.
        fs::write(
            dir.join(".git/packed-refs"),
            "# pack-refs with: peeled fully-peeled sorted\n\
             1111111111111111111111111111111111111111 refs/heads/wip/refs/heads/main\n\
             ^2222222222222222222222222222222222222222\n\
             3333333333333333333333333333333333333333 refs/heads/main\n",
        )
        .unwrap();
        assert_eq!(git_rev(&dir).as_deref(), Some("3333333333333333333333333333333333333333"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_registry_latest_errors() {
        let dir = scratch_dir("empty");
        let reg = RunRegistry::open(&dir).unwrap();
        assert!(reg.resolve("latest").unwrap_err().contains("empty"));
        fs::remove_dir_all(&dir).ok();
    }
}
