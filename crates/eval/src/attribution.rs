//! Per-module failure attribution ("blame"): join a translation trace with the
//! [`crate::error_analysis`] failure mode to decide which PURPLE module lost
//! each EX miss (DESIGN.md §9).
//!
//! The paper argues each module removes a distinct failure band (ablations,
//! Table VIII); this module makes that argument measurable per example. The
//! cascade walks the pipeline in stage order and blames the *first* module
//! whose contract was violated — upstream misses make downstream behaviour
//! unattributable, so precedence follows dataflow:
//!
//! 1. [`Blame::PruningRecallMiss`] — schema pruning dropped a gold item, so no
//!    later stage could have recovered.
//! 2. [`Blame::SkeletonTopKMiss`] — the gold skeleton was absent from the
//!    predictor's top-k.
//! 3. [`Blame::DemoSupportGap`] — no demonstration matched at any abstraction
//!    level (or every match was dropped by the token budget), so the LLM saw
//!    no relevant exemplar.
//! 4. [`Blame::AdaptionRegression`] — some raw sample was EX-correct but its
//!    adapted form is not: a fixer broke it.
//! 5. [`Blame::VoteMisselection`] — an EX-correct adapted sample existed but
//!    the consistency vote picked another.
//! 6. [`Blame::LlmHallucination`] — every module upheld its contract and no
//!    sample was ever correct: the model itself missed. Split by the paper's
//!    six error categories via which fixer categories fired.

use crate::error_analysis::{classify, FailureMode};
use crate::metrics::ex_match_str;
use engine::Database;
use serde::{Deserialize, Serialize};
use sqlkit::{Level, Query};
use std::fmt::Write as _;

/// Which pipeline module an EX loss is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blame {
    /// Schema pruning removed a gold schema item (recall miss).
    PruningRecallMiss,
    /// The gold skeleton was not in the predictor's top-k.
    SkeletonTopKMiss,
    /// No demonstration supported the prediction at any abstraction level.
    DemoSupportGap,
    /// Nothing upstream failed and no sample was ever EX-correct: the LLM
    /// hallucinated (split by error category via the fixers that fired).
    LlmHallucination,
    /// A database-adaption fixer turned an EX-correct sample wrong.
    AdaptionRegression,
    /// An EX-correct adapted sample existed but the consistency vote chose a
    /// wrong one.
    VoteMisselection,
}

impl Blame {
    /// Number of blame classes (array dimension of [`AttributionReport::counts`]).
    pub const COUNT: usize = 6;

    /// Every blame class, in pipeline order. This order is the serialization
    /// order.
    pub const ALL: [Blame; Blame::COUNT] = [
        Blame::PruningRecallMiss,
        Blame::SkeletonTopKMiss,
        Blame::DemoSupportGap,
        Blame::LlmHallucination,
        Blame::AdaptionRegression,
        Blame::VoteMisselection,
    ];

    /// Stable kebab-case name used in JSON and report tables.
    pub fn name(self) -> &'static str {
        match self {
            Blame::PruningRecallMiss => "pruning-recall-miss",
            Blame::SkeletonTopKMiss => "skeleton-topk-miss",
            Blame::DemoSupportGap => "demo-support-gap",
            Blame::LlmHallucination => "llm-hallucination",
            Blame::AdaptionRegression => "adaption-regression",
            Blame::VoteMisselection => "vote-misselection",
        }
    }

    /// Parse a [`Blame::name`] back.
    pub fn from_name(name: &str) -> Option<Blame> {
        Blame::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Array index (position within [`Blame::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The trace facts attribution needs, flattened to plain data so any
/// translator (and any crate layer above `eval`) can supply them.
///
/// `purple`'s `TranslationTrace::blame` builds one of these from a real trace;
/// tests build them by hand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Whether the pruned schema still covered every gold item.
    pub recall_covered: bool,
    /// Whether the gold skeleton appeared in the predictor's top-k.
    pub gold_in_topk: bool,
    /// Abstraction level at which a demonstration supported the prompt
    /// (`None` = no support at any level, or all support dropped by budget).
    pub support_level: Option<Level>,
    /// Demonstrations dropped by the token budget (context for support gaps).
    pub dropped_by_budget: usize,
    /// Raw LLM samples, pre-adaption, in generation order.
    pub samples: Vec<String>,
    /// The same samples post-adaption (identical to `samples` when adaption is
    /// disabled), parallel to `samples`.
    pub adapted: Vec<String>,
    /// Fixer categories that fired during adaption, in firing order.
    pub fixes: Vec<String>,
    /// The SQL the vote finally selected.
    pub final_sql: String,
}

/// The attribution outcome for one EX-lost example.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The module charged with the loss.
    pub blame: Blame,
    /// For [`Blame::LlmHallucination`]: the first fixer category that fired,
    /// mapped to the paper's error taxonomy (`None` when no fixer fired).
    pub category: Option<obs::Fixer>,
    /// The failure mode of the final SQL (never `Correct`/`EquivalentForm`).
    pub mode: FailureMode,
}

/// Attribute one example's outcome to a module.
///
/// Returns `None` when the final SQL is EX-correct ([`FailureMode::Correct`]
/// or [`FailureMode::EquivalentForm`]) — there is no loss to attribute — and
/// otherwise the first-violated-module verdict per the cascade in the module
/// docs.
pub fn attribute(trace: &TraceSummary, gold: &Query, db: &Database) -> Option<Verdict> {
    let mode = classify(&trace.final_sql, gold, db);
    if matches!(mode, FailureMode::Correct | FailureMode::EquivalentForm) {
        return None;
    }
    let mut category = None;
    let blame = if !trace.recall_covered {
        Blame::PruningRecallMiss
    } else if !trace.gold_in_topk {
        Blame::SkeletonTopKMiss
    } else if trace.support_level.is_none() {
        Blame::DemoSupportGap
    } else {
        let raw_ok: Vec<bool> = trace.samples.iter().map(|s| ex_match_str(s, gold, db)).collect();
        let adapted_ok: Vec<bool> =
            trace.adapted.iter().map(|s| ex_match_str(s, gold, db)).collect();
        let regressed = raw_ok.iter().zip(&adapted_ok).any(|(&raw, &adapted)| raw && !adapted);
        if regressed {
            Blame::AdaptionRegression
        } else if adapted_ok.iter().any(|&ok| ok) {
            Blame::VoteMisselection
        } else {
            category = trace.fixes.first().and_then(|f| obs::Fixer::from_category(f));
            Blame::LlmHallucination
        }
    };
    Some(Verdict { blame, category, mode })
}

/// Aggregated blame counts for one evaluated split.
///
/// Built by folding per-example [`Verdict`]s **in example order**, like every
/// other report aggregate, so it is identical for any worker count. The class
/// counts sum to `total - ex_correct` (every EX loss is attributed to exactly
/// one module).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Examples analyzed.
    pub total: usize,
    /// Examples whose final SQL was EX-correct (nothing to attribute).
    pub ex_correct: usize,
    /// Per-class loss counts, indexed by [`Blame::index`].
    pub counts: [usize; Blame::COUNT],
    /// [`Blame::LlmHallucination`] losses split by the paper's error
    /// categories, indexed by [`obs::Fixer::index`].
    pub llm_by_category: [usize; obs::Fixer::COUNT],
    /// Hallucination losses where no fixer fired (no category evidence).
    pub llm_uncategorized: usize,
}

impl AttributionReport {
    /// Fold one example's verdict (`None` = EX-correct).
    pub fn add(&mut self, verdict: Option<&Verdict>) {
        self.total += 1;
        let Some(v) = verdict else {
            self.ex_correct += 1;
            return;
        };
        self.counts[v.blame.index()] += 1;
        if v.blame == Blame::LlmHallucination {
            match v.category {
                Some(f) => self.llm_by_category[f.index()] += 1,
                None => self.llm_uncategorized += 1,
            }
        }
    }

    /// Total attributed losses (= sum of [`AttributionReport::counts`]).
    pub fn blamed(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Count for one blame class.
    pub fn count(&self, blame: Blame) -> usize {
        self.counts[blame.index()]
    }

    /// A class's share of all EX losses, in percent (0 when lossless).
    pub fn share(&self, blame: Blame) -> f64 {
        let blamed = self.blamed();
        if blamed == 0 {
            0.0
        } else {
            100.0 * self.count(blame) as f64 / blamed as f64
        }
    }

    /// Render the blame table as markdown. Every class gets a row (zeros
    /// included) so the table shape is fixed; the hallucination split follows
    /// as a second table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        writeln!(out, "## Failure attribution").unwrap();
        writeln!(out).unwrap();
        writeln!(
            out,
            "{} examples · {} EX-correct · {} losses attributed",
            self.total,
            self.ex_correct,
            self.blamed()
        )
        .unwrap();
        writeln!(out).unwrap();
        writeln!(out, "| blame class | count | EX-loss share |").unwrap();
        writeln!(out, "|---|---:|---:|").unwrap();
        for b in Blame::ALL {
            writeln!(out, "| {} | {} | {:.1}% |", b.name(), self.count(b), self.share(b)).unwrap();
        }
        writeln!(out).unwrap();
        writeln!(out, "### LLM hallucination by error category").unwrap();
        writeln!(out).unwrap();
        writeln!(out, "| category | count |").unwrap();
        writeln!(out, "|---|---:|").unwrap();
        for f in obs::Fixer::ALL {
            writeln!(out, "| {} | {} |", f.name(), self.llm_by_category[f.index()]).unwrap();
        }
        writeln!(out, "| uncategorized | {} |", self.llm_uncategorized).unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::Value;
    use sqlkit::{parse, Column, ColumnType, Schema, Table};

    fn db() -> Database {
        let mut s = Schema::new("d");
        s.tables.push(Table {
            name: "t".into(),
            display: "t".into(),
            columns: vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("grp", ColumnType::Text),
            ],
            primary_key: Some(0),
        });
        let mut db = Database::empty(s);
        for (i, (n, g)) in [("a", "x"), ("b", "y"), ("c", "y")].iter().enumerate() {
            db.insert(
                0,
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Text(n.to_string()),
                    Value::Text(g.to_string()),
                ],
            );
        }
        db
    }

    fn gold() -> Query {
        parse("SELECT name FROM t WHERE id = 1").unwrap()
    }

    const GOLD: &str = "SELECT name FROM t WHERE id = 1";
    const WRONG: &str = "SELECT name FROM t WHERE id = 2";

    /// A summary where every upstream module did its job and the vote picked a
    /// wrong sample; tests override individual fields to trigger each class.
    fn healthy_but_wrong() -> TraceSummary {
        TraceSummary {
            recall_covered: true,
            gold_in_topk: true,
            support_level: Some(Level::Detail),
            dropped_by_budget: 0,
            samples: vec![WRONG.into(), WRONG.into()],
            adapted: vec![WRONG.into(), WRONG.into()],
            fixes: vec![],
            final_sql: WRONG.into(),
        }
    }

    #[test]
    fn ex_correct_final_sql_yields_no_verdict() {
        let db = db();
        let mut t = healthy_but_wrong();
        t.final_sql = GOLD.into();
        assert_eq!(attribute(&t, &gold(), &db), None);
        // EquivalentForm counts as EX-correct too.
        t.final_sql = "SELECT name FROM t WHERE id < 2".into();
        assert_eq!(attribute(&t, &gold(), &db), None);
    }

    #[test]
    fn cascade_blames_the_first_violated_module() {
        let db = db();
        let gold = gold();
        // Recall miss outranks everything downstream, even a topk miss.
        let mut t = healthy_but_wrong();
        t.recall_covered = false;
        t.gold_in_topk = false;
        assert_eq!(attribute(&t, &gold, &db).unwrap().blame, Blame::PruningRecallMiss);

        let mut t = healthy_but_wrong();
        t.gold_in_topk = false;
        t.support_level = None;
        assert_eq!(attribute(&t, &gold, &db).unwrap().blame, Blame::SkeletonTopKMiss);

        let mut t = healthy_but_wrong();
        t.support_level = None;
        assert_eq!(attribute(&t, &gold, &db).unwrap().blame, Blame::DemoSupportGap);
    }

    #[test]
    fn adaption_regression_needs_a_correct_raw_sample_turned_wrong() {
        let db = db();
        let gold = gold();
        let mut t = healthy_but_wrong();
        t.samples = vec![GOLD.into(), WRONG.into()];
        t.adapted = vec![WRONG.into(), WRONG.into()];
        let v = attribute(&t, &gold, &db).unwrap();
        assert_eq!(v.blame, Blame::AdaptionRegression);
        assert_eq!(v.mode, FailureMode::WrongValue);
    }

    #[test]
    fn vote_misselection_needs_a_surviving_correct_sample() {
        let db = db();
        let gold = gold();
        let mut t = healthy_but_wrong();
        t.samples = vec![WRONG.into(), WRONG.into()];
        t.adapted = vec![WRONG.into(), GOLD.into()];
        assert_eq!(attribute(&t, &gold, &db).unwrap().blame, Blame::VoteMisselection);
        // Regression outranks misselection when both patterns are present.
        t.samples = vec![GOLD.into(), WRONG.into()];
        assert_eq!(attribute(&t, &gold, &db).unwrap().blame, Blame::AdaptionRegression);
    }

    #[test]
    fn hallucination_carries_the_first_fixer_category() {
        let db = db();
        let gold = gold();
        let mut t = healthy_but_wrong();
        t.fixes = vec!["missing-table".into(), "column-ambiguity".into()];
        let v = attribute(&t, &gold, &db).unwrap();
        assert_eq!(v.blame, Blame::LlmHallucination);
        assert_eq!(v.category, Some(obs::Fixer::MissingTable));

        t.fixes.clear();
        let v = attribute(&t, &gold, &db).unwrap();
        assert_eq!(v.blame, Blame::LlmHallucination);
        assert_eq!(v.category, None);
    }

    #[test]
    fn report_counts_sum_to_ex_losses_and_renders_every_class() {
        let db = db();
        let gold = gold();
        let mut report = AttributionReport::default();
        let mut t = healthy_but_wrong();
        report.add(attribute(&t, &gold, &db).as_ref()); // hallucination, no category
        t.fixes = vec!["missing-table".into()];
        report.add(attribute(&t, &gold, &db).as_ref()); // hallucination, categorized
        t.final_sql = GOLD.into();
        report.add(attribute(&t, &gold, &db).as_ref()); // EX-correct
        let mut t = healthy_but_wrong();
        t.recall_covered = false;
        report.add(attribute(&t, &gold, &db).as_ref()); // recall miss

        assert_eq!(report.total, 4);
        assert_eq!(report.ex_correct, 1);
        assert_eq!(report.blamed(), report.total - report.ex_correct);
        assert_eq!(report.count(Blame::LlmHallucination), 2);
        assert_eq!(report.llm_uncategorized, 1);
        assert_eq!(report.llm_by_category[obs::Fixer::MissingTable.index()], 1);
        assert!((report.share(Blame::LlmHallucination) - 66.7).abs() < 0.1);

        let md = report.render_markdown();
        for b in Blame::ALL {
            assert!(md.contains(b.name()), "missing row for {}", b.name());
        }
        for f in obs::Fixer::ALL {
            assert!(md.contains(f.name()), "missing category row for {}", f.name());
        }
        assert!(md.contains("uncategorized"));
    }

    #[test]
    fn blame_names_round_trip() {
        for b in Blame::ALL {
            assert_eq!(Blame::from_name(b.name()), Some(b));
            assert_eq!(Blame::ALL[b.index()], b);
        }
        assert_eq!(Blame::from_name("nope"), None);
    }
}
