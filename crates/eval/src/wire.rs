//! Line-delimited JSON codecs for the service boundary ([`Request`] /
//! [`Response`]), hand-rolled like [`crate::reportio`] so the wire format has
//! no external dependency and a stable, documented shape.
//!
//! # Request line
//!
//! ```json
//! {"id":7,"idx":3,"db_index":1,"nl":"...","sql":"...","linking_noise":0.0,"trace":false,"seed":null}
//! ```
//!
//! A request carries the example *by value* — everything a translator reads
//! (`nl`, gold `sql`, `linking_noise`) plus `db_index` naming the database
//! within the server-resident benchmark. On decode the gold `sql` is re-parsed
//! into the structural [`sqlkit::Query`] and the hardness recomputed from it,
//! so the owned [`JobSpec`] is complete without shipping the parse tree; the
//! structured NL realization is a generation-time artifact that no translator
//! reads and is not carried (decoded specs get an empty one).
//!
//! # Response line
//!
//! ```json
//! {"id":7,"idx":3,"sql":"SELECT ...","prompt_tokens":120,"output_tokens":11}
//! ```
//!
//! Responses echo the request `id` so clients can multiplex: the server may
//! answer out of order.

use crate::harness::{JobSpec, Request, Response};
use crate::reportio::{escape, Parser};
use spidergen::types::{Example, Realization};
use std::fmt::Write as _;

/// A protocol command line: `{"cmd":"<verb>"}` instead of a request object.
///
/// Commands share the LDJSON stream with requests and are distinguished by
/// the `cmd` key (requests never carry one). The verbs are `metrics`, the
/// live telemetry probe answered with a Prometheus text exposition
/// (DESIGN.md §14), and `health`, the windowed SLO probe answered with one
/// JSON object (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeCommand {
    /// `{"cmd":"metrics"}` — return a Prometheus-style exposition of the
    /// server's counters, gauges, histograms, cache stats, and exec op stats.
    Metrics,
    /// `{"cmd":"health"}` — return the current sliding-window telemetry
    /// snapshot and SLO verdict as one JSON object.
    Health,
}

/// Classify a protocol line as a command.
///
/// Returns `Ok(Some(_))` for a well-formed command, `Ok(None)` when the line
/// is not a command at all (no `cmd` key, or not parseable JSON — the caller
/// should then try [`request_from_json`], whose error reporting covers the
/// malformed case), and `Err` for a line that *is* a command but is invalid
/// (unknown verb or stray fields).
pub fn command_from_json(text: &str) -> Result<Option<ServeCommand>, String> {
    let Ok(value) = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document() else {
        return Ok(None);
    };
    let Ok(obj) = value.as_object("command") else {
        return Ok(None);
    };
    let Some(verb) = obj.get("cmd") else {
        return Ok(None);
    };
    if obj.len() != 1 {
        return Err("command lines carry exactly one field, `cmd`".into());
    }
    match verb.as_string("cmd")?.as_str() {
        "metrics" => Ok(Some(ServeCommand::Metrics)),
        "health" => Ok(Some(ServeCommand::Health)),
        other => Err(format!("unknown command verb `{other}`")),
    }
}

/// Serialize a request to a single JSON line (no trailing newline).
pub fn request_to_json(req: &Request) -> String {
    let spec = &req.spec;
    let ex = &spec.example;
    let mut out = String::with_capacity(96 + ex.nl.len() + ex.sql.len());
    out.push('{');
    write!(out, "\"id\":{},", req.id).unwrap();
    write!(out, "\"idx\":{},", spec.idx).unwrap();
    write!(out, "\"db_index\":{},", ex.db_index).unwrap();
    write!(out, "\"nl\":{},", escape(&ex.nl)).unwrap();
    write!(out, "\"sql\":{},", escape(&ex.sql)).unwrap();
    write!(out, "\"linking_noise\":{:?},", ex.linking_noise).unwrap();
    write!(out, "\"trace\":{},", spec.trace).unwrap();
    match spec.seed {
        Some(s) => write!(out, "\"seed\":{s}").unwrap(),
        None => out.push_str("\"seed\":null"),
    }
    out.push('}');
    out
}

/// Parse a request line. The gold SQL is re-parsed to recover the structural
/// query; a request whose SQL does not parse is rejected (the gold query is
/// what EM/EX/TS scoring compares against, so it must be valid).
pub fn request_from_json(text: &str) -> Result<Request, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    let obj = value.as_object("request")?;
    let mut id = None;
    let mut idx = None;
    let mut db_index = None;
    let mut nl = None;
    let mut sql = None;
    let mut linking_noise = 0.0f64;
    let mut trace = false;
    let mut seed = None;
    for (key, val) in obj {
        match key.as_str() {
            "id" => id = Some(val.as_u64("id")?),
            "idx" => idx = Some(val.as_usize("idx")?),
            "db_index" => db_index = Some(val.as_usize("db_index")?),
            "nl" => nl = Some(val.as_string("nl")?),
            "sql" => sql = Some(val.as_string("sql")?),
            "linking_noise" => linking_noise = val.as_f64("linking_noise")?,
            "trace" => trace = val.as_bool("trace")?,
            "seed" => {
                if !val.is_null() {
                    seed = Some(val.as_u64("seed")?);
                }
            }
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    let id = id.ok_or("request missing `id`")?;
    let idx = idx.ok_or("request missing `idx`")?;
    let db_index = db_index.ok_or("request missing `db_index`")?;
    let nl = nl.ok_or("request missing `nl`")?;
    let sql = sql.ok_or("request missing `sql`")?;
    let query = sqlkit::parse(&sql).map_err(|e| format!("request sql does not parse: {e}"))?;
    let hardness = sqlkit::hardness(&query);
    let example = Example {
        db_index,
        nl,
        sql,
        query,
        realization: Realization::default(),
        linking_noise,
        hardness,
    };
    Ok(Request { id, spec: JobSpec { idx, example, trace, seed } })
}

/// Serialize a response to a single JSON line (no trailing newline).
pub fn response_to_json(resp: &Response) -> String {
    let mut out = String::with_capacity(64 + resp.sql.len());
    out.push('{');
    write!(out, "\"id\":{},", resp.id).unwrap();
    write!(out, "\"idx\":{},", resp.idx).unwrap();
    write!(out, "\"sql\":{},", escape(&resp.sql)).unwrap();
    write!(out, "\"prompt_tokens\":{},", resp.prompt_tokens).unwrap();
    write!(out, "\"output_tokens\":{}", resp.output_tokens).unwrap();
    out.push('}');
    out
}

/// Parse a response line.
pub fn response_from_json(text: &str) -> Result<Response, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    let obj = value.as_object("response")?;
    let mut resp =
        Response { id: 0, idx: 0, sql: String::new(), prompt_tokens: 0, output_tokens: 0 };
    let mut seen_id = false;
    let mut seen_sql = false;
    for (key, val) in obj {
        match key.as_str() {
            "id" => {
                resp.id = val.as_u64("id")?;
                seen_id = true;
            }
            "idx" => resp.idx = val.as_usize("idx")?,
            "sql" => {
                resp.sql = val.as_string("sql")?;
                seen_sql = true;
            }
            "prompt_tokens" => resp.prompt_tokens = val.as_u64("prompt_tokens")?,
            "output_tokens" => resp.output_tokens = val.as_u64("output_tokens")?,
            other => return Err(format!("unknown response field `{other}`")),
        }
    }
    if !seen_id {
        return Err("response missing `id`".into());
    }
    if !seen_sql {
        return Err("response missing `sql`".into());
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidergen::{generate_suite, GenConfig};

    #[test]
    fn request_round_trips_over_generated_examples() {
        let suite = generate_suite(&GenConfig::tiny(31));
        for (idx, ex) in suite.dev.examples.iter().enumerate() {
            let req = Request::new(idx as u64 + 100, JobSpec::of(idx, ex).with_trace(idx % 2 == 0));
            let line = request_to_json(&req);
            let back = request_from_json(&line).expect("round trip");
            assert_eq!(back.id, req.id);
            assert_eq!(back.spec.idx, idx);
            assert_eq!(back.spec.trace, req.spec.trace);
            assert_eq!(back.spec.seed, None);
            let bex = &back.spec.example;
            assert_eq!(bex.db_index, ex.db_index);
            assert_eq!(bex.nl, ex.nl);
            assert_eq!(bex.sql, ex.sql);
            assert_eq!(bex.linking_noise, ex.linking_noise);
            // The structural query and hardness are recovered from the SQL
            // text: print -> parse must land on the same structure.
            assert_eq!(bex.query, ex.query, "parse/print round trip for {:?}", ex.sql);
            assert_eq!(bex.hardness, ex.hardness);
            // Encoding the decoded request reproduces the line byte-for-byte.
            assert_eq!(request_to_json(&back), line);
        }
    }

    #[test]
    fn request_seed_and_escapes_round_trip() {
        let suite = generate_suite(&GenConfig::tiny(31));
        let mut spec = JobSpec::of(0, &suite.dev.examples[0]).with_seed(0xdead_beef);
        spec.example.nl = "line\none \"two\"\tthree \\ four".into();
        let req = Request::new(1, spec);
        let back = request_from_json(&request_to_json(&req)).unwrap();
        assert_eq!(back.spec.seed, Some(0xdead_beef));
        assert_eq!(back.spec.example.nl, req.spec.example.nl);
    }

    #[test]
    fn request_rejects_garbage() {
        assert!(request_from_json("not json").is_err());
        assert!(request_from_json("{\"id\":1}").is_err(), "missing fields");
        assert!(
            request_from_json(
                "{\"id\":1,\"idx\":0,\"db_index\":0,\"nl\":\"q\",\"sql\":\"SELEC\",\
                 \"linking_noise\":0.0,\"trace\":false,\"seed\":null}"
            )
            .is_err(),
            "unparseable gold sql"
        );
        assert!(request_from_json("{\"id\":1,\"bogus\":2}").is_err(), "unknown field");
    }

    #[test]
    fn command_lines_are_classified() {
        assert_eq!(command_from_json("{\"cmd\":\"metrics\"}"), Ok(Some(ServeCommand::Metrics)));
        assert_eq!(command_from_json("{\"cmd\":\"health\"}"), Ok(Some(ServeCommand::Health)));
        // Not commands: requests, non-objects, malformed JSON (the request
        // parser owns their error reporting).
        assert_eq!(command_from_json("{\"id\":1}"), Ok(None));
        assert_eq!(command_from_json("[1,2]"), Ok(None));
        assert_eq!(command_from_json("not json"), Ok(None));
        // Commands with problems are errors, not fall-throughs.
        assert!(command_from_json("{\"cmd\":\"reboot\"}").is_err(), "unknown verb");
        assert!(command_from_json("{\"cmd\":\"metrics\",\"x\":1}").is_err(), "stray field");
        assert!(command_from_json("{\"cmd\":7}").is_err(), "non-string verb");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            id: 42,
            idx: 7,
            sql: "SELECT \"a\" FROM t".into(),
            prompt_tokens: 321,
            output_tokens: 17,
        };
        let line = response_to_json(&resp);
        assert_eq!(response_from_json(&line).unwrap(), resp);
        assert!(response_from_json("{\"idx\":1}").is_err(), "missing id/sql");
        assert!(response_from_json("{\"id\":1,\"sql\":\"s\",\"x\":0}").is_err());
    }
}
