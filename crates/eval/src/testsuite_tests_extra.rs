//! Additional test-suite (TS) behaviour tests, kept in a separate module to keep
//! `testsuite.rs` focused on the implementation.

use crate::metrics::ex_match;
use crate::testsuite::{build_suite, fuzz_instance, mutate, ts_match, ts_match_str, SuiteConfig};
use engine::{Database, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlkit::{parse, Column, ColumnType, Schema, Table};

fn db() -> Database {
    let mut s = Schema::new("d");
    s.tables.push(Table {
        name: "t".into(),
        display: "t".into(),
        columns: vec![
            Column::new("id", ColumnType::Int),
            Column::new("name", ColumnType::Text),
            Column::new("score", ColumnType::Float),
        ],
        primary_key: Some(0),
    });
    let mut db = Database::empty(s);
    for (i, (n, x)) in [("a", 1.5), ("b", 2.5), ("c", 3.5), ("d", 4.5)].iter().enumerate() {
        db.insert(0, vec![Value::Int(i as i64 + 1), Value::Text(n.to_string()), Value::Float(*x)]);
    }
    db
}

#[test]
fn suite_construction_is_deterministic() {
    let db = db();
    let gold = parse("SELECT name FROM t WHERE id < 3").unwrap();
    let a = build_suite(&db, &[&gold], SuiteConfig::default(), 11);
    let b = build_suite(&db, &[&gold], SuiteConfig::default(), 11);
    assert_eq!(a.databases.len(), b.databases.len());
    for (x, y) in a.databases.iter().zip(&b.databases) {
        assert_eq!(x.rows, y.rows);
    }
}

#[test]
fn original_instance_is_always_first() {
    let db = db();
    let gold = parse("SELECT name FROM t").unwrap();
    let suite = build_suite(&db, &[&gold], SuiteConfig::default(), 3);
    assert_eq!(suite.databases[0].rows, db.rows);
}

#[test]
fn ts_match_str_rejects_garbage_and_accepts_gold() {
    let db = db();
    let gold = parse("SELECT name FROM t WHERE id <= 2").unwrap();
    let suite = build_suite(&db, &[&gold], SuiteConfig::default(), 5);
    assert!(ts_match_str(&gold.to_string(), &gold, &suite));
    assert!(!ts_match_str("SELECT nope FROM", &gold, &suite));
    assert!(!ts_match_str("SELECT missing FROM t", &gold, &suite));
}

#[test]
fn ts_catches_boundary_off_by_one_that_ex_misses() {
    // id < 3 vs id <= 2: truly equivalent on integer ids -> TS must also pass.
    let db = db();
    let gold = parse("SELECT name FROM t WHERE id < 3").unwrap();
    let equiv = parse("SELECT name FROM t WHERE id <= 2").unwrap();
    let suite = build_suite(&db, &[&gold], SuiteConfig::default(), 5);
    assert!(ts_match(&equiv, &gold, &suite), "integer boundary shift is exact");
    // id < 3 vs id < 4: coincides only if no row has id = 3... here it differs
    // already on the original, sanity-check EX agrees.
    let wrong = parse("SELECT name FROM t WHERE id < 4").unwrap();
    assert!(!ex_match(&wrong, &gold, &db));
    assert!(!ts_match(&wrong, &gold, &suite));
}

#[test]
fn fuzzed_instances_vary_but_keep_arity_and_types_loose() {
    let db = db();
    let mut rng = StdRng::seed_from_u64(9);
    let mut distinct_row_counts = std::collections::HashSet::new();
    for salt in 0..12 {
        let f = fuzz_instance(&db, &mut rng, salt);
        distinct_row_counts.insert(f.rows[0].len());
        for row in &f.rows[0] {
            assert_eq!(row.len(), 3);
        }
    }
    assert!(distinct_row_counts.len() > 1, "fuzzing should vary row counts");
}

#[test]
fn mutate_of_minimal_query_still_produces_neighbors() {
    let mut rng = StdRng::seed_from_u64(4);
    let q = parse("SELECT name FROM t").unwrap();
    let ms = mutate(&q, &mut rng);
    // Only the DISTINCT toggle applies to this minimal shape.
    assert!(!ms.is_empty());
    assert!(ms.iter().all(|m| m != &q));
}

#[test]
fn empty_probe_set_still_builds_a_usable_suite() {
    let db = db();
    let suite = build_suite(&db, &[], SuiteConfig::default(), 1);
    assert_eq!(suite.databases.len(), 1, "no probes -> nothing to distill, original only");
    let gold = parse("SELECT name FROM t").unwrap();
    assert!(ts_match(&gold, &gold, &suite));
}
