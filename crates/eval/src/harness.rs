//! Evaluation harness: run any NL2SQL translator over a benchmark split and report
//! EM / EX / TS accuracy, per-hardness breakdown (Fig. 9), and token consumption
//! (Fig. 11). Evaluation is available serially ([`evaluate`]) and across worker
//! threads ([`evaluate_par`]); both produce identical reports because translators
//! are stateless (`&self`) and seeded purely by example position.
//!
//! # Borrowed vs. owned job types
//!
//! Translation work exists in two shapes with a fixed division of labor:
//!
//! - [`Job<'a>`] is the **borrowed view** — the single argument of
//!   [`Translator::run`]. It borrows its example and database from the caller,
//!   so it is copy-cheap, allocation-free, and pinned to the evaluation loop's
//!   stack frame. Every internal path (serial, parallel, diagnose) constructs
//!   `Job`s on the fly.
//! - [`JobSpec`] is the **owned form** — everything a `Job` carries except the
//!   database reference and the event sink. A spec can cross a thread-crossing
//!   queue, sit in a server's admission buffer, or round-trip through JSON
//!   ([`crate::reportio::request_to_json`]); at the point of execution it is
//!   lowered back to the borrowed view with [`JobSpec::as_job`].
//! - [`Request`]/[`Response`] wrap specs for the service boundary
//!   (`purple-serve`): a request tags a spec with a client-chosen `id`, a
//!   response pairs that id with the translation, so responses can be returned
//!   out of order over a multiplexed connection.
//!
//! The contract: borrowed `Job` never outlives its evaluation call and is the
//! only type translators see; owned `JobSpec` is the only type that crosses
//! threads or wires. Databases are deliberately *not* owned by specs — they
//! are identified by `example.db_index` into the server-resident [`Benchmark`],
//! which is the unit that owns schemas and data.
//!
//! [`RunEnv`] is the companion bundle on the translator side: session, ledger,
//! metrics, and events in one cloneable value, attached via `with_env` instead
//! of four builder setters, so a worker pool can share one environment.

use crate::attribution::AttributionReport;
use crate::metrics::{em_match_str, ex_match_str_with};
use crate::testsuite::{build_suite, ts_match_str_with, SuiteConfig, TestSuite};
use engine::{Database, ExecSession};
use llm::CostLedger;
use obs::{EventSink, MetricsRegistry, StageMetrics};
use serde::{Deserialize, Serialize};
use spidergen::types::{Benchmark, Example};
use std::sync::Arc;

/// One translation produced by a system, with its token cost.
#[derive(Debug, Clone, Default)]
pub struct Translation {
    /// Predicted SQL text.
    pub sql: String,
    /// Prompt (input) tokens consumed.
    pub prompt_tokens: u64,
    /// Completion (output) tokens consumed.
    pub output_tokens: u64,
}

/// One unit of translation work: which example to translate, against which
/// database, and how the run should be observed.
///
/// A `Job` is the single argument of [`Translator::run`]. Construct one with
/// [`Job::new`] and chain options:
///
/// ```ignore
/// let outcome = system.run(Job::new(idx, example, db).with_trace(true));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Job<'a> {
    /// Position of the example within its split. All per-run randomness must
    /// derive from this (via [`Job::seed`]) so evaluation is order- and
    /// thread-independent.
    pub idx: usize,
    /// The natural-language example to translate.
    pub example: &'a Example,
    /// The database the example targets.
    pub db: &'a Database,
    /// Request a step-by-step trace record where the translator supports one
    /// (e.g. `purple`'s `TranslationTrace`; ignored by translators without
    /// traces).
    pub trace: bool,
    /// Optional seed override; when `None`, [`Job::seed`] derives the seed
    /// from the translator's base seed and `idx` (the usual path).
    pub seed: Option<u64>,
    /// Optional structured-event sink: translators that support trace events
    /// record them into a per-run [`obs::EventRecorder`] and publish the
    /// finished batch here (ignored by translators without events).
    pub events: Option<&'a obs::EventSink>,
    /// Optional request-scoped span recorder: translators that support
    /// hierarchical tracing (DESIGN.md §14) record one span per pipeline
    /// stage, LLM call, and statement execution into it (ignored by
    /// translators without tracing).
    pub tracer: Option<&'a obs::TraceRecorder>,
}

impl<'a> Job<'a> {
    /// A job for the example at position `idx` of its split.
    pub fn new(idx: usize, example: &'a Example, db: &'a Database) -> Self {
        Job { idx, example, db, trace: false, seed: None, events: None, tracer: None }
    }

    /// Request (or suppress) trace capture.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Attach (or detach) a structured-event sink.
    pub fn with_events(mut self, events: Option<&'a obs::EventSink>) -> Self {
        self.events = events;
        self
    }

    /// Attach (or detach) a request-scoped span recorder.
    pub fn with_tracer(mut self, tracer: Option<&'a obs::TraceRecorder>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Pin the per-run RNG seed, overriding the [`seed_for`] derivation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The RNG seed for this job: the explicit override if set, else
    /// [`seed_for`]`(base, idx)`.
    pub fn seed(&self, base: u64) -> u64 {
        self.seed.unwrap_or_else(|| seed_for(base, self.idx))
    }
}

/// The shared environment a translator runs inside: execution session, cost
/// ledger, metrics registry, and structured-event sink, bundled into one
/// cloneable value.
///
/// `RunEnv` replaced the four per-translator builder setters
/// (`with_session`/`with_ledger`/`with_metrics`/`with_events`, removed):
/// translators accept the whole bundle via `with_env(env)`, and a server's
/// worker pool clones one env per worker so every component is shared. All
/// fields are optional — [`RunEnv::default`] is the fully detached
/// environment.
///
/// The `events` sink acts as the *default* sink: a job-level sink
/// ([`Job::with_events`]) takes precedence when both are present.
#[derive(Debug, Clone, Default)]
pub struct RunEnv {
    /// Shared execution session (parse/plan/result/column caches).
    pub session: Option<Arc<ExecSession>>,
    /// Shared API cost ledger for LLM calls.
    pub ledger: Option<Arc<CostLedger>>,
    /// Shared metrics registry; per-run snapshots are absorbed into it.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Default structured-event sink for jobs that don't carry their own.
    pub events: Option<Arc<EventSink>>,
}

impl RunEnv {
    /// An environment with every component detached (same as `default()`).
    pub fn detached() -> Self {
        RunEnv::default()
    }

    /// Attach a shared execution session.
    pub fn with_session(mut self, session: Arc<ExecSession>) -> Self {
        self.session = Some(session);
        self
    }

    /// Attach a shared cost ledger.
    pub fn with_ledger(mut self, ledger: Arc<CostLedger>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Attach a shared metrics registry.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attach a default structured-event sink.
    pub fn with_events(mut self, events: Arc<EventSink>) -> Self {
        self.events = Some(events);
        self
    }

    /// The session to execute on: the attached one, or a fresh disabled
    /// (pass-through) session.
    pub fn session_or_disabled(&self) -> Arc<ExecSession> {
        self.session.clone().unwrap_or_else(ExecSession::disabled)
    }
}

/// Owned translation work: everything a [`Job`] carries except the database
/// reference and event sink, so the unit can cross a thread boundary or a
/// wire (see the module docs on borrowed vs. owned).
///
/// The example is addressed *by value* (a clone) plus `example.db_index` into
/// the benchmark that owns the databases; [`JobSpec::as_job`] lowers the spec
/// back to the borrowed view at the point of execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Position of the example within its split (drives seeding, exactly like
    /// [`Job::idx`]).
    pub idx: usize,
    /// The example to translate, owned.
    pub example: Example,
    /// Request a step-by-step trace record (see [`Job::trace`]).
    pub trace: bool,
    /// Optional seed override (see [`Job::seed`]).
    pub seed: Option<u64>,
}

impl JobSpec {
    /// A spec for the example at position `idx`, cloning it out of its split.
    pub fn of(idx: usize, example: &Example) -> Self {
        JobSpec { idx, example: example.clone(), trace: false, seed: None }
    }

    /// Request (or suppress) trace capture.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Pin the per-run RNG seed, overriding the [`seed_for`] derivation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Lower to the borrowed view against a database. The returned job borrows
    /// both the spec and the database, so it cannot outlive either — the
    /// compile-time guarantee that owned specs are executed, never retained,
    /// by translators.
    pub fn as_job<'a>(&'a self, db: &'a Database) -> Job<'a> {
        Job {
            idx: self.idx,
            example: &self.example,
            db,
            trace: self.trace,
            seed: self.seed,
            events: None,
            tracer: None,
        }
    }
}

/// One service-boundary request: a client-chosen correlation id plus the work.
///
/// Ids are opaque to the server and echoed verbatim on the [`Response`], so a
/// client multiplexing many requests over one connection can match replies
/// arriving out of order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The translation work.
    pub spec: JobSpec,
}

impl Request {
    /// A request wrapping `spec` under correlation id `id`.
    pub fn new(id: u64, spec: JobSpec) -> Self {
        Request { id, spec }
    }
}

/// One service-boundary response: the translation for the request with the
/// matching `id`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Correlation id copied from the request.
    pub id: u64,
    /// Example position copied from the request's spec.
    pub idx: usize,
    /// Predicted SQL text.
    pub sql: String,
    /// Prompt (input) tokens consumed.
    pub prompt_tokens: u64,
    /// Completion (output) tokens consumed.
    pub output_tokens: u64,
}

impl Response {
    /// Build the response for `req` from the translator's outcome.
    pub fn from_outcome(req: &Request, outcome: &RunOutcome) -> Self {
        let t = &outcome.translation;
        Response {
            id: req.id,
            idx: req.spec.idx,
            sql: t.sql.clone(),
            prompt_tokens: t.prompt_tokens,
            output_tokens: t.output_tokens,
        }
    }
}

/// What one [`Translator::run`] call produced: the translation plus the
/// per-run metrics snapshot (empty for uninstrumented translators).
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// The predicted SQL and its token cost.
    pub translation: Translation,
    /// Per-stage metrics recorded during this run.
    pub metrics: StageMetrics,
}

impl RunOutcome {
    /// An outcome with no metrics — the shape uninstrumented translators return.
    pub fn bare(translation: Translation) -> Self {
        RunOutcome { translation, metrics: StageMetrics::default() }
    }
}

/// An NL2SQL system under evaluation.
///
/// `run` takes `&self` so a single instance can serve many examples
/// concurrently; all per-call randomness must derive from the job (see
/// [`Job::seed`]). Two calls with the same job must return the same translation
/// regardless of order or thread interleaving — [`evaluate_par`] relies on this
/// contract, and it extends to metrics: a run's [`StageMetrics`] must be a pure
/// function of the job (guaranteed by the default [`obs::Clock::Virtual`]).
///
/// # Instrumentation convention
///
/// Translators that support shared observability accept a [`RunEnv`] via a
/// builder-style `with_env(env)` method (`Purple`, `LlmBaseline`, and
/// `PlmTranslator` all do). Each `run` records into a private per-run
/// registry first and publishes the finished snapshot into the shared
/// registry in one atomic step, so concurrent runs never interleave partial
/// metrics.
pub trait Translator {
    /// Display name ("PURPLE (ChatGPT)").
    fn name(&self) -> String;
    /// Translate one job, returning the translation and per-run metrics.
    fn run(&self, job: Job<'_>) -> RunOutcome;
}

/// Derive the per-example RNG seed from a system base seed and the example's
/// position within its split.
///
/// The `idx + 1` term reproduces the historical per-translator call counter
/// (which started at 1), so reports are bit-identical to those produced by the
/// earlier stateful harness while remaining order- and thread-independent.
pub fn seed_for(base: u64, idx: usize) -> u64 {
    base.wrapping_mul(0x100000001b3).wrapping_add(idx as u64 + 1)
}

/// One example's metric outcome, kept in example order inside
/// [`EvalReport::examples`] so two archived runs of the same split can be
/// diffed example-by-example (`eval::diff`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExampleOutcome {
    /// Exact-set match.
    pub em: bool,
    /// Execution match.
    pub ex: bool,
    /// Test-suite match (always `false` when the run had no suites).
    pub ts: bool,
    /// Hardness level, 0 (easy) ..= 3 (extra).
    pub hardness: u8,
}

impl ExampleOutcome {
    /// Pack into a small integer for the JSON codec: bit 0 = EM, bit 1 = EX,
    /// bit 2 = TS, bits 3.. = hardness.
    pub fn pack(self) -> u64 {
        (self.em as u64)
            | (self.ex as u64) << 1
            | (self.ts as u64) << 2
            | (self.hardness as u64) << 3
    }

    /// Inverse of [`ExampleOutcome::pack`]; rejects out-of-range hardness.
    pub fn unpack(v: u64) -> Result<Self, String> {
        let hardness = v >> 3;
        if hardness > 3 {
            return Err(format!("packed example outcome {v} has hardness {hardness} > 3"));
        }
        Ok(ExampleOutcome {
            em: v & 1 != 0,
            ex: v & 2 != 0,
            ts: v & 4 != 0,
            hardness: hardness as u8,
        })
    }
}

/// Accuracy within one hardness bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Examples in the bucket.
    pub n: usize,
    /// EM hits.
    pub em: usize,
    /// EX hits.
    pub ex: usize,
    /// TS hits.
    pub ts: usize,
}

impl Bucket {
    /// EM accuracy in percent.
    pub fn em_pct(&self) -> f64 {
        pct(self.em, self.n)
    }
    /// EX accuracy in percent.
    pub fn ex_pct(&self) -> f64 {
        pct(self.ex, self.n)
    }
    /// TS accuracy in percent.
    pub fn ts_pct(&self) -> f64 {
        pct(self.ts, self.n)
    }
}

fn pct(hits: usize, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        100.0 * hits as f64 / n as f64
    }
}

/// Full evaluation report for one system on one split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// System name.
    pub system: String,
    /// Split name.
    pub split: String,
    /// Overall bucket.
    pub overall: Bucket,
    /// Per-hardness buckets, indexed easy..extra.
    pub by_hardness: [Bucket; 4],
    /// Average prompt tokens per query.
    pub avg_prompt_tokens: f64,
    /// Average output tokens per query.
    pub avg_output_tokens: f64,
    /// Whether TS was computed.
    pub has_ts: bool,
    /// Aggregated per-stage metrics, folded from per-example snapshots in
    /// example order (identical for any worker count).
    pub metrics: StageMetrics,
    /// Per-module failure attribution, when the evaluation ran with blame
    /// analysis (`repro --diagnose`); `None` for plain evaluations.
    pub attribution: Option<AttributionReport>,
    /// Per-example EM/EX/TS outcomes in example order. Empty only for reports
    /// decoded from schema-v1 archives, which predate per-example capture.
    pub examples: Vec<ExampleOutcome>,
}

impl EvalReport {
    /// One-line summary like the paper's tables.
    pub fn summary(&self) -> String {
        if self.has_ts {
            format!(
                "{:<28} EM {:5.1}%  EX {:5.1}%  TS {:5.1}%",
                self.system,
                self.overall.em_pct(),
                self.overall.ex_pct(),
                self.overall.ts_pct()
            )
        } else {
            format!(
                "{:<28} EM {:5.1}%  EX {:5.1}%",
                self.system,
                self.overall.em_pct(),
                self.overall.ex_pct()
            )
        }
    }
}

/// Build distilled test suites for every database of a benchmark, using the
/// split's own gold queries as distillation probes.
pub fn build_suites(bench: &Benchmark, cfg: SuiteConfig, seed: u64) -> Vec<TestSuite> {
    bench
        .databases
        .iter()
        .enumerate()
        .map(|(di, db)| {
            let probes: Vec<&sqlkit::Query> =
                bench.examples.iter().filter(|e| e.db_index == di).map(|e| &e.query).collect();
            build_suite(db, &probes, cfg, seed.wrapping_add(di as u64))
        })
        .collect()
}

/// Metric outcome of a single example; merged in example order by `assemble` so
/// serial and parallel evaluation fold to identical reports. Shared with the
/// state-scored DML harness (`crate::dml`), which produces the same shape from
/// post-write database state instead of result sets.
pub(crate) struct ExampleScore {
    pub(crate) prompt_tokens: u64,
    pub(crate) output_tokens: u64,
    pub(crate) em: bool,
    pub(crate) ex: bool,
    pub(crate) ts: bool,
    pub(crate) hardness: usize,
    pub(crate) metrics: StageMetrics,
}

fn score_outcome(
    outcome: RunOutcome,
    ex: &Example,
    db: &Database,
    suites: Option<&[TestSuite]>,
    session: &ExecSession,
) -> ExampleScore {
    let t = &outcome.translation;
    let sdb = session.bind(db);
    ExampleScore {
        prompt_tokens: t.prompt_tokens,
        output_tokens: t.output_tokens,
        em: em_match_str(&t.sql, &ex.query, &db.schema),
        ex: ex_match_str_with(&sdb, &t.sql, &ex.query),
        ts: match suites {
            Some(suites) => ts_match_str_with(session, &t.sql, &ex.query, &suites[ex.db_index]),
            None => false,
        },
        hardness: ex.hardness as usize,
        metrics: outcome.metrics,
    }
}

fn score_example(
    translator: &dyn Translator,
    idx: usize,
    ex: &Example,
    db: &Database,
    suites: Option<&[TestSuite]>,
    session: &ExecSession,
) -> ExampleScore {
    score_outcome(translator.run(Job::new(idx, ex, db)), ex, db, suites, session)
}

pub(crate) fn assemble(
    system: String,
    split: String,
    scores: impl Iterator<Item = ExampleScore>,
    n: usize,
    has_ts: bool,
) -> EvalReport {
    let mut overall = Bucket::default();
    let mut by_hardness = [Bucket::default(); 4];
    let mut prompt_tokens = 0u64;
    let mut output_tokens = 0u64;
    let mut metrics = StageMetrics::default();
    let mut examples = Vec::with_capacity(n);
    for s in scores {
        prompt_tokens += s.prompt_tokens;
        output_tokens += s.output_tokens;
        metrics.merge(&s.metrics);
        examples.push(ExampleOutcome { em: s.em, ex: s.ex, ts: s.ts, hardness: s.hardness as u8 });
        for b in [&mut overall, &mut by_hardness[s.hardness]] {
            b.n += 1;
            b.em += s.em as usize;
            b.ex += s.ex as usize;
            b.ts += s.ts as usize;
        }
    }
    let denom = n.max(1) as f64;
    EvalReport {
        system,
        split,
        overall,
        by_hardness,
        avg_prompt_tokens: prompt_tokens as f64 / denom,
        avg_output_tokens: output_tokens as f64 / denom,
        has_ts,
        metrics,
        attribution: None,
        examples,
    }
}

/// Evaluate a translator over a split. `suites` enables the TS metric.
///
/// Scoring executes without memoization; use [`evaluate_with_session`] to
/// share an [`ExecSession`] across examples. Both produce identical reports.
pub fn evaluate(
    translator: &dyn Translator,
    bench: &Benchmark,
    suites: Option<&[TestSuite]>,
) -> EvalReport {
    evaluate_with_session(translator, bench, suites, &ExecSession::disabled())
}

/// [`evaluate`] with a shared execution session: gold-query runs (EX and each
/// TS instance) are memoized across examples and across systems sharing the
/// session. Cache state never feeds the report — only which executions are
/// recomputed — so the [`EvalReport`] is byte-identical to [`evaluate`]'s.
pub fn evaluate_with_session(
    translator: &dyn Translator,
    bench: &Benchmark,
    suites: Option<&[TestSuite]>,
    session: &ExecSession,
) -> EvalReport {
    let scores = bench
        .examples
        .iter()
        .enumerate()
        .map(|(idx, ex)| score_example(translator, idx, ex, bench.db_of(ex), suites, session));
    assemble(translator.name(), bench.name.clone(), scores, bench.examples.len(), suites.is_some())
}

/// Evaluate a translator over a split using up to `jobs` worker threads.
///
/// Examples are scored in contiguous chunks on scoped worker threads, then the
/// per-example scores are folded in example order — the resulting
/// [`EvalReport`] is identical to [`evaluate`]'s for any `jobs`, including the
/// floating-point token averages (the summation order is fixed). `jobs` is
/// clamped to `1..=examples`; with one job (or fewer than two examples) this
/// delegates to the serial path.
pub fn evaluate_par(
    translator: &(dyn Translator + Sync),
    bench: &Benchmark,
    suites: Option<&[TestSuite]>,
    jobs: usize,
) -> EvalReport {
    evaluate_par_with_session(translator, bench, suites, jobs, &ExecSession::disabled())
}

/// [`evaluate_par`] with a shared execution session. The session's caches are
/// thread-safe and memoize values that are pure functions of (database,
/// SQL), so worker interleaving can only change which thread pays for a
/// computation — never its value — and the report stays identical to the
/// serial, uncached one for any `jobs` count.
pub fn evaluate_par_with_session(
    translator: &(dyn Translator + Sync),
    bench: &Benchmark,
    suites: Option<&[TestSuite]>,
    jobs: usize,
    session: &ExecSession,
) -> EvalReport {
    let n = bench.examples.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 || n < 2 {
        return evaluate_with_session(translator, bench, suites, session);
    }
    let mut scores: Vec<Option<ExampleScore>> = Vec::with_capacity(n);
    scores.resize_with(n, || None);
    let chunk = n.div_ceil(jobs);
    crossbeam::thread::scope(|scope| {
        for (ci, out) in scores.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            scope.spawn(move |_| {
                for (off, slot) in out.iter_mut().enumerate() {
                    let idx = start + off;
                    let ex = &bench.examples[idx];
                    *slot =
                        Some(score_example(translator, idx, ex, bench.db_of(ex), suites, session));
                }
            });
        }
    })
    .expect("evaluation worker panicked");
    assemble(
        translator.name(),
        bench.name.clone(),
        scores.into_iter().map(|s| s.expect("all examples scored")),
        n,
        suites.is_some(),
    )
}

/// Evaluate with a custom per-job runner that yields an extra per-example
/// value alongside the run outcome (e.g. a blame verdict derived from the
/// run's trace).
///
/// The runner receives a bare [`Job`] and may decorate it
/// (`job.with_trace(true).with_events(...)`) before running the system.
/// Scores fold exactly like [`evaluate_par`]'s — in example order — and the
/// extras come back as a `Vec` in example order, so both the report and the
/// extras are identical for any `jobs` count. Scoring goes through `session`;
/// pass [`ExecSession::disabled`] for uncached evaluation (same report either
/// way).
pub fn evaluate_with_par<T, F>(
    system: String,
    bench: &Benchmark,
    suites: Option<&[TestSuite]>,
    jobs: usize,
    session: &ExecSession,
    run: F,
) -> (EvalReport, Vec<T>)
where
    T: Send,
    F: Fn(Job<'_>) -> (RunOutcome, T) + Sync,
{
    let n = bench.examples.len();
    let jobs = jobs.clamp(1, n.max(1));
    let mut results: Vec<Option<(ExampleScore, T)>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let score_at = |idx: usize| {
        let ex = &bench.examples[idx];
        let db = bench.db_of(ex);
        let (outcome, extra) = run(Job::new(idx, ex, db));
        (score_outcome(outcome, ex, db, suites, session), extra)
    };
    if jobs == 1 || n < 2 {
        for (idx, slot) in results.iter_mut().enumerate() {
            *slot = Some(score_at(idx));
        }
    } else {
        let chunk = n.div_ceil(jobs);
        crossbeam::thread::scope(|scope| {
            for (ci, out) in results.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                let score_at = &score_at;
                scope.spawn(move |_| {
                    for (off, slot) in out.iter_mut().enumerate() {
                        *slot = Some(score_at(start + off));
                    }
                });
            }
        })
        .expect("evaluation worker panicked");
    }
    let mut scores = Vec::with_capacity(n);
    let mut extras = Vec::with_capacity(n);
    for r in results {
        let (s, e) = r.expect("all examples scored");
        scores.push(s);
        extras.push(e);
    }
    let report = assemble(system, bench.name.clone(), scores.into_iter(), n, suites.is_some());
    (report, extras)
}

/// A trivial translator that echoes the gold SQL — the harness's upper bound and a
/// self-check that metrics report 100% on perfect output.
pub struct OracleTranslator;

impl Translator for OracleTranslator {
    fn name(&self) -> String {
        "Oracle (gold echo)".into()
    }
    fn run(&self, job: Job<'_>) -> RunOutcome {
        RunOutcome::bare(Translation {
            sql: job.example.sql.clone(),
            prompt_tokens: 0,
            output_tokens: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidergen::{generate_suite, GenConfig};

    #[test]
    fn oracle_scores_100_on_all_metrics() {
        let suite = generate_suite(&GenConfig::tiny(21));
        let suites = build_suites(&suite.dev, SuiteConfig::default(), 5);
        let report = evaluate(&OracleTranslator, &suite.dev, Some(&suites));
        assert_eq!(report.overall.em_pct(), 100.0, "EM");
        assert_eq!(report.overall.ex_pct(), 100.0, "EX");
        assert_eq!(report.overall.ts_pct(), 100.0, "TS");
        assert!(report.has_ts);
        let total: usize = report.by_hardness.iter().map(|b| b.n).sum();
        assert_eq!(total, report.overall.n);
    }

    #[test]
    fn garbage_translator_scores_zero() {
        struct Garbage;
        impl Translator for Garbage {
            fn name(&self) -> String {
                "garbage".into()
            }
            fn run(&self, _job: Job<'_>) -> RunOutcome {
                RunOutcome::bare(Translation {
                    sql: "SELECT".into(),
                    prompt_tokens: 10,
                    output_tokens: 2,
                })
            }
        }
        let suite = generate_suite(&GenConfig::tiny(22));
        let report = evaluate(&Garbage, &suite.dev, None);
        assert_eq!(report.overall.em_pct(), 0.0);
        assert_eq!(report.overall.ex_pct(), 0.0);
        assert!(!report.has_ts);
        assert_eq!(report.avg_prompt_tokens, 10.0);
    }

    #[test]
    fn summary_formats() {
        let suite = generate_suite(&GenConfig::tiny(23));
        let report = evaluate(&OracleTranslator, &suite.dev, None);
        assert!(report.summary().contains("EM 100.0%"));
    }

    /// A translator whose output depends on `idx` in a way that would expose
    /// any misrouting of example positions across worker chunks.
    struct IdxSensitive;
    impl Translator for IdxSensitive {
        fn name(&self) -> String {
            "idx-sensitive".into()
        }
        fn run(&self, job: Job<'_>) -> RunOutcome {
            let seed = job.seed(0xabcd);
            let mut metrics = StageMetrics::default();
            metrics.observe(obs::Stage::LlmCall, seed % 41);
            metrics.count(obs::Counter::PromptTokens, seed % 97);
            RunOutcome {
                translation: Translation {
                    // Echo gold only on even-seeded positions: metrics then
                    // encode exactly which idx each example was scored with.
                    sql: if seed.is_multiple_of(2) {
                        job.example.sql.clone()
                    } else {
                        "SELECT".into()
                    },
                    prompt_tokens: seed % 97,
                    output_tokens: seed % 13,
                },
                metrics,
            }
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial_for_any_job_count() {
        let suite = generate_suite(&GenConfig::tiny(24));
        let suites = build_suites(&suite.dev, SuiteConfig::default(), 7);
        let serial = evaluate(&IdxSensitive, &suite.dev, Some(&suites));
        for jobs in [1, 2, 4, 33] {
            let par = evaluate_par(&IdxSensitive, &suite.dev, Some(&suites), jobs);
            assert_eq!(serial, par, "jobs={jobs}");
        }
    }

    #[test]
    fn evaluate_with_par_matches_serial_and_orders_extras() {
        let suite = generate_suite(&GenConfig::tiny(24));
        let run = |job: Job<'_>| (IdxSensitive.run(job), job.idx);
        let session = ExecSession::disabled();
        let (serial, base_extras) =
            evaluate_with_par("with-par".into(), &suite.dev, None, 1, &session, run);
        assert_eq!(base_extras, (0..suite.dev.examples.len()).collect::<Vec<_>>());
        for jobs in [2, 4, 33] {
            let (par, extras) =
                evaluate_with_par("with-par".into(), &suite.dev, None, jobs, &session, run);
            assert_eq!(serial, par, "jobs={jobs}");
            assert_eq!(extras, base_extras, "jobs={jobs}");
        }
        // The plain harness produces the same report for the same runner.
        let mut plain = evaluate(&IdxSensitive, &suite.dev, None);
        plain.system = "with-par".into();
        assert_eq!(plain, serial);
    }

    #[test]
    fn session_scoring_matches_uncached_for_any_job_count() {
        let suite = generate_suite(&GenConfig::tiny(24));
        let suites = build_suites(&suite.dev, SuiteConfig::default(), 7);
        let uncached = evaluate(&IdxSensitive, &suite.dev, Some(&suites));
        let session = ExecSession::shared();
        for jobs in [1, 4] {
            let cached =
                evaluate_par_with_session(&IdxSensitive, &suite.dev, Some(&suites), jobs, &session);
            assert_eq!(uncached, cached, "jobs={jobs}");
        }
        let stats = session.stats();
        assert!(stats.result.hits > 0, "shared session saw no cache hits: {stats:?}");
    }

    #[test]
    fn parallel_evaluation_handles_degenerate_inputs() {
        let mut suite = generate_suite(&GenConfig::tiny(25));
        // jobs=0 clamps to 1; an empty split must not panic.
        let report = evaluate_par(&OracleTranslator, &suite.dev, None, 0);
        assert_eq!(report.overall.em_pct(), 100.0);
        suite.dev.examples.clear();
        let empty = evaluate_par(&OracleTranslator, &suite.dev, None, 8);
        assert_eq!(empty.overall.n, 0);
        assert_eq!(empty.avg_prompt_tokens, 0.0);
    }

    #[test]
    fn seed_for_matches_historical_counter_sequence() {
        // The stateful harness seeded call k (1-based) with
        // base * 0x100000001b3 + k; position idx is call idx+1.
        let base = 41u64;
        let mut counter = 0u64;
        for idx in 0..10 {
            counter += 1;
            let old = base.wrapping_mul(0x100000001b3).wrapping_add(counter);
            assert_eq!(seed_for(base, idx), old);
        }
    }
}
