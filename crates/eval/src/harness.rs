//! Evaluation harness: run any NL2SQL translator over a benchmark split and report
//! EM / EX / TS accuracy, per-hardness breakdown (Fig. 9), and token consumption
//! (Fig. 11).

use crate::metrics::{em_match_str, ex_match_str};
use crate::testsuite::{build_suite, ts_match_str, SuiteConfig, TestSuite};
use engine::Database;
use serde::{Deserialize, Serialize};
use spidergen::types::{Benchmark, Example};

/// One translation produced by a system, with its token cost.
#[derive(Debug, Clone, Default)]
pub struct Translation {
    /// Predicted SQL text.
    pub sql: String,
    /// Prompt (input) tokens consumed.
    pub prompt_tokens: u64,
    /// Completion (output) tokens consumed.
    pub output_tokens: u64,
}

/// An NL2SQL system under evaluation.
pub trait Translator {
    /// Display name ("PURPLE (ChatGPT)").
    fn name(&self) -> String;
    /// Translate one example against its database.
    fn translate(&mut self, example: &Example, db: &Database) -> Translation;
}

/// Accuracy within one hardness bucket.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Bucket {
    /// Examples in the bucket.
    pub n: usize,
    /// EM hits.
    pub em: usize,
    /// EX hits.
    pub ex: usize,
    /// TS hits.
    pub ts: usize,
}

impl Bucket {
    /// EM accuracy in percent.
    pub fn em_pct(&self) -> f64 {
        pct(self.em, self.n)
    }
    /// EX accuracy in percent.
    pub fn ex_pct(&self) -> f64 {
        pct(self.ex, self.n)
    }
    /// TS accuracy in percent.
    pub fn ts_pct(&self) -> f64 {
        pct(self.ts, self.n)
    }
}

fn pct(hits: usize, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        100.0 * hits as f64 / n as f64
    }
}

/// Full evaluation report for one system on one split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// System name.
    pub system: String,
    /// Split name.
    pub split: String,
    /// Overall bucket.
    pub overall: Bucket,
    /// Per-hardness buckets, indexed easy..extra.
    pub by_hardness: [Bucket; 4],
    /// Average prompt tokens per query.
    pub avg_prompt_tokens: f64,
    /// Average output tokens per query.
    pub avg_output_tokens: f64,
    /// Whether TS was computed.
    pub has_ts: bool,
}

impl EvalReport {
    /// One-line summary like the paper's tables.
    pub fn summary(&self) -> String {
        if self.has_ts {
            format!(
                "{:<28} EM {:5.1}%  EX {:5.1}%  TS {:5.1}%",
                self.system,
                self.overall.em_pct(),
                self.overall.ex_pct(),
                self.overall.ts_pct()
            )
        } else {
            format!(
                "{:<28} EM {:5.1}%  EX {:5.1}%",
                self.system,
                self.overall.em_pct(),
                self.overall.ex_pct()
            )
        }
    }
}

/// Build distilled test suites for every database of a benchmark, using the
/// split's own gold queries as distillation probes.
pub fn build_suites(bench: &Benchmark, cfg: SuiteConfig, seed: u64) -> Vec<TestSuite> {
    bench
        .databases
        .iter()
        .enumerate()
        .map(|(di, db)| {
            let probes: Vec<&sqlkit::Query> = bench
                .examples
                .iter()
                .filter(|e| e.db_index == di)
                .map(|e| &e.query)
                .collect();
            build_suite(db, &probes, cfg, seed.wrapping_add(di as u64))
        })
        .collect()
}

/// Evaluate a translator over a split. `suites` enables the TS metric.
pub fn evaluate(
    translator: &mut dyn Translator,
    bench: &Benchmark,
    suites: Option<&[TestSuite]>,
) -> EvalReport {
    let mut overall = Bucket::default();
    let mut by_hardness = [Bucket::default(); 4];
    let mut prompt_tokens = 0u64;
    let mut output_tokens = 0u64;
    for ex in &bench.examples {
        let db = bench.db_of(ex);
        let t = translator.translate(ex, db);
        prompt_tokens += t.prompt_tokens;
        output_tokens += t.output_tokens;
        let em = em_match_str(&t.sql, &ex.query, &db.schema);
        let exm = ex_match_str(&t.sql, &ex.query, db);
        let tsm = match suites {
            Some(suites) => ts_match_str(&t.sql, &ex.query, &suites[ex.db_index]),
            None => false,
        };
        let h = ex.hardness as usize;
        for b in [&mut overall, &mut by_hardness[h]] {
            b.n += 1;
            b.em += em as usize;
            b.ex += exm as usize;
            b.ts += tsm as usize;
        }
    }
    let n = bench.examples.len().max(1) as f64;
    EvalReport {
        system: translator.name(),
        split: bench.name.clone(),
        overall,
        by_hardness,
        avg_prompt_tokens: prompt_tokens as f64 / n,
        avg_output_tokens: output_tokens as f64 / n,
        has_ts: suites.is_some(),
    }
}

/// A trivial translator that echoes the gold SQL — the harness's upper bound and a
/// self-check that metrics report 100% on perfect output.
pub struct OracleTranslator;

impl Translator for OracleTranslator {
    fn name(&self) -> String {
        "Oracle (gold echo)".into()
    }
    fn translate(&mut self, example: &Example, _db: &Database) -> Translation {
        Translation { sql: example.sql.clone(), prompt_tokens: 0, output_tokens: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidergen::{generate_suite, GenConfig};

    #[test]
    fn oracle_scores_100_on_all_metrics() {
        let suite = generate_suite(&GenConfig::tiny(21));
        let suites = build_suites(&suite.dev, SuiteConfig::default(), 5);
        let report = evaluate(&mut OracleTranslator, &suite.dev, Some(&suites));
        assert_eq!(report.overall.em_pct(), 100.0, "EM");
        assert_eq!(report.overall.ex_pct(), 100.0, "EX");
        assert_eq!(report.overall.ts_pct(), 100.0, "TS");
        assert!(report.has_ts);
        let total: usize = report.by_hardness.iter().map(|b| b.n).sum();
        assert_eq!(total, report.overall.n);
    }

    #[test]
    fn garbage_translator_scores_zero() {
        struct Garbage;
        impl Translator for Garbage {
            fn name(&self) -> String {
                "garbage".into()
            }
            fn translate(&mut self, _e: &Example, _db: &Database) -> Translation {
                Translation { sql: "SELECT".into(), prompt_tokens: 10, output_tokens: 2 }
            }
        }
        let suite = generate_suite(&GenConfig::tiny(22));
        let report = evaluate(&mut Garbage, &suite.dev, None);
        assert_eq!(report.overall.em_pct(), 0.0);
        assert_eq!(report.overall.ex_pct(), 0.0);
        assert!(!report.has_ts);
        assert_eq!(report.avg_prompt_tokens, 10.0);
    }

    #[test]
    fn summary_formats() {
        let suite = generate_suite(&GenConfig::tiny(23));
        let report = evaluate(&mut OracleTranslator, &suite.dev, None);
        assert!(report.summary().contains("EM 100.0%"));
    }
}
