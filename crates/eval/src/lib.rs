//! # purple-eval
//!
//! Evaluation metrics and harness: Exact-Set Match, Execution Match, distilled
//! Test-Suite accuracy (Zhong et al.), per-hardness breakdown, token accounting,
//! and the [`Translator`] trait every system under test implements.

#![warn(missing_docs)]

pub mod attribution;
pub mod diff;
pub mod dml;
pub mod error_analysis;
pub mod harness;
pub mod metrics;
pub mod registry;
pub mod reportio;
pub mod testsuite;
pub mod wire;

#[cfg(test)]
mod testsuite_tests_extra;

pub use attribution::{attribute, AttributionReport, Blame, TraceSummary, Verdict};
pub use diff::{
    diff_from_json, diff_reports, diff_to_json, gate, mcnemar, BlameShift, GateConfig, GateOutcome,
    MetricDiff, ReportDiff, StageLatencyDelta,
};
pub use dml::{
    dml_hardness, evaluate_dml, evaluate_dml_par, DmlJob, DmlOracle, StatementTranslator,
};
pub use error_analysis::{classify, classify_with, ErrorReport, FailureMode};
pub use harness::{
    build_suites, evaluate, evaluate_par, evaluate_par_with_session, evaluate_with_par,
    evaluate_with_session, seed_for, Bucket, EvalReport, ExampleOutcome, Job, JobSpec,
    OracleTranslator, Request, Response, RunEnv, RunOutcome, Translation, Translator,
};
pub use metrics::{
    em_match, em_match_str, ex_match, ex_match_str, ex_match_str_with, ex_match_with,
};
pub use registry::{fingerprint, git_rev, RunManifest, RunRegistry};
pub use reportio::{
    attribution_from_json, attribution_to_json, metrics_from_json, metrics_to_json,
    report_from_json, report_to_json, REPORT_SCHEMA_VERSION,
};
pub use testsuite::{
    build_suite, fuzz_instance, mutate, ts_match, ts_match_str, ts_match_str_with, ts_match_with,
    SuiteConfig, TestSuite,
};
pub use wire::{
    command_from_json, request_from_json, request_to_json, response_from_json, response_to_json,
    ServeCommand,
};
