//! Robustness properties of the archive codecs: any truncated or corrupted
//! artifact must be rejected with a descriptive error (or, for benign
//! mutations, parse to *some* value) — decoding must never panic. The run
//! registry reads these files back from disk, so a crashing parser would turn
//! a bad archive into a crashed gate instead of a failed load.

use eval::harness::{Bucket, EvalReport, ExampleOutcome};
use eval::registry::RunManifest;
use eval::reportio::{report_from_json, report_to_json};
use obs::{Counter, Fixer, Gauge, Stage, StageMetrics};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn sample_report() -> EvalReport {
    let mut m = StageMetrics::default();
    m.observe(Stage::SchemaPruning, 12);
    m.observe(Stage::LlmCall, 4096);
    m.observe(Stage::LlmCall, u64::MAX);
    m.count(Counter::LlmCalls, 2);
    m.count(Counter::PromptTokens, 4100);
    m.record_fix(Fixer::MissingTable, true);
    m.set_gauge(Gauge::DemosInPrompt, 4);
    EvalReport {
        system: "PURPLE (ChatGPT)".into(),
        split: "dev".into(),
        overall: Bucket { n: 3, em: 1, ex: 2, ts: 1 },
        by_hardness: [
            Bucket { n: 1, em: 1, ex: 1, ts: 1 },
            Bucket { n: 1, em: 0, ex: 1, ts: 0 },
            Bucket { n: 1, em: 0, ex: 0, ts: 0 },
            Bucket { n: 0, em: 0, ex: 0, ts: 0 },
        ],
        avg_prompt_tokens: 5990.333333333333,
        avg_output_tokens: 27.49,
        has_ts: true,
        metrics: m,
        attribution: None,
        examples: vec![
            ExampleOutcome { em: true, ex: true, ts: true, hardness: 0 },
            ExampleOutcome { em: false, ex: true, ts: false, hardness: 1 },
            ExampleOutcome { em: false, ex: false, ts: false, hardness: 2 },
        ],
    }
}

fn sample_manifest() -> RunManifest {
    RunManifest {
        system: "PURPLE (ChatGPT)".into(),
        split: "dev".into(),
        scale: "tiny".into(),
        seed: 42,
        jobs: 4,
        profile: "ChatGPT".into(),
        config_fingerprint: "deadbeefdeadbeef".into(),
        git_rev: "0123abc".into(),
        schema_version: eval::REPORT_SCHEMA_VERSION,
        examples: 3,
    }
}

/// Parse without propagating panics; returns Err(description) for both parse
/// errors and panics so the caller can distinguish "rejected" from "crashed".
fn try_parse<T>(f: impl FnOnce() -> Result<T, String>) -> Result<Result<T, String>, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        p.downcast_ref::<&str>().map(|s| s.to_string()).unwrap_or_else(|| "panic".into())
    })
}

#[test]
fn every_truncation_of_a_report_is_rejected_not_crashed() {
    let json = report_to_json(&sample_report());
    assert!(report_from_json(&json).is_ok(), "full document parses");
    for len in 0..json.len() {
        if !json.is_char_boundary(len) {
            continue;
        }
        let prefix = &json[..len];
        let outcome = try_parse(|| report_from_json(prefix))
            .unwrap_or_else(|p| panic!("report_from_json panicked at truncation {len}: {p}"));
        let err = outcome
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes parsed as a full report"));
        assert!(!err.is_empty(), "empty error message at truncation {len}");
    }
}

#[test]
fn every_truncation_of_a_manifest_is_rejected_not_crashed() {
    let json = sample_manifest().to_json();
    assert!(RunManifest::from_json(&json).is_ok(), "full manifest parses");
    for len in 0..json.len() {
        let prefix = &json[..len];
        let outcome = try_parse(|| RunManifest::from_json(prefix))
            .unwrap_or_else(|p| panic!("RunManifest::from_json panicked at truncation {len}: {p}"));
        let err = outcome
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes parsed as a full manifest"));
        assert!(!err.is_empty(), "empty error message at truncation {len}");
    }
}

#[test]
fn single_byte_corruption_never_panics_the_report_parser() {
    let json = report_to_json(&sample_report());
    let bytes = json.as_bytes();
    // Deterministic sweep: every position × a byte alphabet that hits the
    // paths that historically break hand-rolled parsers (structure characters,
    // digits, quotes, escapes, NUL, and DEL).
    let alphabet: &[u8] = b"\0\"\\{}[]:,0927eE+-.xnt ~\x7f";
    for pos in 0..bytes.len() {
        for &b in alphabet {
            if bytes[pos] == b {
                continue;
            }
            let mut mutated = bytes.to_vec();
            mutated[pos] = b;
            let Ok(text) = String::from_utf8(mutated) else {
                continue; // the decoder only ever sees &str
            };
            let outcome = try_parse(|| report_from_json(&text)).unwrap_or_else(|p| {
                panic!("report_from_json panicked with byte {b:#04x} at {pos}: {p}")
            });
            if let Err(err) = outcome {
                assert!(!err.is_empty(), "empty error for byte {b:#04x} at {pos}");
            }
            // Ok is acceptable: some mutations (e.g. a digit inside a number)
            // produce a different but well-formed document.
        }
    }
}

#[test]
fn corrupted_packed_outcomes_are_descriptive_errors() {
    let json = report_to_json(&sample_report());
    // A packed value with hardness > 3 must be rejected with the field name.
    let bad = json.replace("\"examples\":[", "\"examples\":[255,");
    let err = report_from_json(&bad).expect_err("out-of-range packed outcome accepted");
    assert!(
        err.contains("example") || err.contains("outcome") || err.contains("hardness"),
        "error does not describe the bad field: {err}"
    );
    // Garbage instead of the array must also fail cleanly.
    let bad = json.replace("\"examples\":[", "\"examples\":[\"x\",");
    assert!(report_from_json(&bad).is_err(), "non-integer packed outcome accepted");
}
