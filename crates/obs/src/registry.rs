//! The thread-safe metrics registry and its RAII [`Span`] guard.

use crate::{Counter, Fixer, Gauge, Stage, StageMetrics};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// How span durations are measured.
///
/// The default, [`Clock::Virtual`], records the deterministic *work units*
/// declared by the instrumented code (column counts, token counts, sample
/// counts), so aggregated metrics are byte-identical across thread counts and
/// machines. [`Clock::Wall`] records real monotonic nanoseconds for profiling,
/// at the cost of byte-stability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Clock {
    /// Deterministic work units declared via [`Span::set_work`]/[`Span::finish`].
    #[default]
    Virtual,
    /// Real elapsed monotonic nanoseconds.
    Wall,
}

impl Clock {
    /// Stable name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            Clock::Virtual => "virtual",
            Clock::Wall => "wall",
        }
    }

    /// Parse a [`Clock::name`] back.
    pub fn from_name(name: &str) -> Option<Clock> {
        match name {
            "virtual" => Some(Clock::Virtual),
            "wall" => Some(Clock::Wall),
            _ => None,
        }
    }
}

/// A `Sync`, allocation-light metrics registry.
///
/// All state lives in fixed-size arrays behind a single `parking_lot` mutex,
/// so the record path never allocates and [`MetricsRegistry::reset`] /
/// [`MetricsRegistry::snapshot`] are atomic with respect to concurrent
/// recording: an observer sees either all of a recorded event or none of it,
/// never a torn half (the convention `CostLedger` in `purple-llm` also
/// follows).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    clock: Clock,
    inner: Mutex<StageMetrics>,
}

impl MetricsRegistry {
    /// A registry using the given clock.
    pub fn new(clock: Clock) -> Self {
        MetricsRegistry { clock, inner: Mutex::new(StageMetrics::empty(clock)) }
    }

    /// A shareable registry (the shape `with_metrics` builders take).
    pub fn shared(clock: Clock) -> Arc<Self> {
        Arc::new(Self::new(clock))
    }

    /// The clock this registry measures spans with.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Open a timing span for a stage. The span records when dropped (or via
    /// [`Span::finish`]); under [`Clock::Virtual`] its value is the declared
    /// work, under [`Clock::Wall`] the elapsed nanoseconds.
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            reg: self,
            stage,
            start: match self.clock {
                Clock::Wall => Some(Instant::now()),
                Clock::Virtual => None,
            },
            work: 0,
            done: false,
        }
    }

    /// Record one latency observation for a stage directly (no span).
    pub fn observe(&self, stage: Stage, value: u64) {
        self.inner.lock().observe(stage, value);
    }

    /// Add to a counter.
    pub fn count(&self, counter: Counter, by: u64) {
        self.inner.lock().count(counter, by);
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        self.inner.lock().set_gauge(gauge, value);
    }

    /// Raise a gauge to at least `value` (high-watermark semantics).
    pub fn raise_gauge(&self, gauge: Gauge, value: u64) {
        self.inner.lock().raise_gauge(gauge, value);
    }

    /// Record one fixer application (`success` = the sample it repaired ended
    /// up executable).
    pub fn record_fix(&self, fixer: Fixer, success: bool) {
        self.inner.lock().record_fix(fixer, success);
    }

    /// Fold a finished snapshot into this registry in one critical section —
    /// this is how per-run registries publish into a shared one without
    /// interleaving with other runs' events.
    pub fn absorb(&self, snapshot: &StageMetrics) {
        self.inner.lock().merge(snapshot);
    }

    /// Copy out the current totals.
    pub fn snapshot(&self) -> StageMetrics {
        *self.inner.lock()
    }

    /// Zero every metric, atomically with respect to concurrent recording.
    pub fn reset(&self) {
        *self.inner.lock() = StageMetrics::empty(self.clock);
    }

    /// Atomically copy out the current totals and zero the registry, so no
    /// event recorded between the two steps can be lost or double-counted.
    pub fn drain(&self) -> StageMetrics {
        let mut guard = self.inner.lock();
        std::mem::replace(&mut *guard, StageMetrics::empty(self.clock))
    }
}

/// RAII guard for one stage timing. Created by [`MetricsRegistry::span`];
/// records on drop.
#[must_use = "a span records when it goes out of scope; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    reg: &'a MetricsRegistry,
    stage: Stage,
    start: Option<Instant>,
    work: u64,
    done: bool,
}

impl Span<'_> {
    /// Declare the deterministic work units this span covered (used as the
    /// recorded value under [`Clock::Virtual`]; ignored under [`Clock::Wall`]).
    pub fn set_work(&mut self, work: u64) {
        self.work = work;
    }

    /// Close the span now with the given work units.
    pub fn finish(mut self, work: u64) {
        self.work = work;
        self.record();
        self.done = true;
    }

    fn record(&self) {
        let value = match self.start {
            Some(start) => start.elapsed().as_nanos() as u64,
            None => self.work,
        };
        self.reg.observe(self.stage, value);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn virtual_spans_record_declared_work() {
        let reg = MetricsRegistry::new(Clock::Virtual);
        {
            let mut span = reg.span(Stage::SchemaPruning);
            span.set_work(42);
        }
        reg.span(Stage::SchemaPruning).finish(8);
        let snap = reg.snapshot();
        assert_eq!(snap.stage(Stage::SchemaPruning).calls, 2);
        assert_eq!(snap.stage(Stage::SchemaPruning).latency.sum, 50);
        assert_eq!(snap.stage(Stage::SchemaPruning).latency.max, 42);
    }

    #[test]
    fn wall_spans_record_elapsed_nanos() {
        let reg = MetricsRegistry::new(Clock::Wall);
        {
            let mut span = reg.span(Stage::LlmCall);
            span.set_work(7); // ignored under Wall
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.stage(Stage::LlmCall).calls, 1);
        assert!(snap.stage(Stage::LlmCall).latency.sum >= 1_000_000);
    }

    #[test]
    fn drain_is_atomic_and_preserves_total_under_contention() {
        // N writers hammer one counter while a reaper drains repeatedly; the
        // reaped snapshots plus the final residue must sum to exactly the
        // number of events — no loss, no double count.
        const WRITERS: usize = 4;
        const EVENTS: u64 = 5_000;
        let reg = MetricsRegistry::shared(Clock::Virtual);
        let stop = AtomicBool::new(false);
        let mut reaped = 0u64;
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..WRITERS)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    scope.spawn(move || {
                        for _ in 0..EVENTS {
                            reg.count(Counter::Samples, 1);
                        }
                    })
                })
                .collect();
            let reaper = scope.spawn(|| {
                let mut total = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    total += reg.drain().counter(Counter::Samples);
                }
                total
            });
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            reaped = reaper.join().unwrap();
        });
        let residue = reg.snapshot().counter(Counter::Samples);
        assert_eq!(reaped + residue, WRITERS as u64 * EVENTS);
    }

    #[test]
    fn reset_and_record_do_not_tear() {
        // Concurrent record + reset: after everything joins, a final drain
        // must observe internally consistent state (count == bucket sum).
        let reg = MetricsRegistry::shared(Clock::Virtual);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        reg.observe(Stage::Adaption, t * 1000 + i);
                        if i % 97 == 0 {
                            reg.reset();
                        }
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let h = &snap.stage(Stage::Adaption).latency;
        assert_eq!(h.count, h.buckets.iter().sum::<u64>());
        assert_eq!(snap.stage(Stage::Adaption).calls, h.count);
    }

    #[test]
    fn absorb_matches_elementwise_merge() {
        let local = MetricsRegistry::new(Clock::Virtual);
        local.count(Counter::LlmCalls, 3);
        local.record_fix(Fixer::SchemaHallucination, false);
        local.set_gauge(Gauge::PoolSize, 190);
        let snap = local.snapshot();

        let shared = MetricsRegistry::new(Clock::Virtual);
        shared.absorb(&snap);
        shared.absorb(&snap);
        let agg = shared.snapshot();
        assert_eq!(agg.counter(Counter::LlmCalls), 6);
        assert_eq!(agg.fixer(Fixer::SchemaHallucination).hits, 2);
        assert_eq!(agg.gauge(Gauge::PoolSize), Some(190));
    }
}
