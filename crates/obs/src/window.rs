//! Time-resolved telemetry: ring-buffer sliding-window aggregators
//! (DESIGN.md §16).
//!
//! The whole-process [`crate::MetricsRegistry`] answers "what happened since
//! startup"; a [`SlidingWindow`] answers "what is happening *now*": windowed
//! counters read as rates, gauge high-watermarks, and windowed latency
//! distributions yielding rolling p50/p95/p99.
//!
//! A window is clock-agnostic: every [`SlidingWindow::observe`] carries an
//! explicit clock position `at`, so the same type serves both discipline
//! of the two-clock convention (DESIGN.md §8) —
//!
//! * **virtual** positions (work units, arrival indices) make the window a
//!   pure function of its observations: snapshots are byte-identical for any
//!   worker count or arrival interleaving, which is what the soak timeline's
//!   determinism contract is built on;
//! * **wall** positions (nanoseconds since some origin) give live operational
//!   windows — "p99 over the last 60 seconds" — at the usual cost of
//!   machine-dependence.
//!
//! Internally the window is a ring of fixed-width buckets. Observations land
//! in the bucket covering their position; positions older than the retained
//! span are counted as `late` rather than silently folded into the wrong
//! bucket. Per-bucket raw values are retained (up to [`SlidingWindow::new`]'s
//! `sample_cap`) so percentiles are exact nearest-rank statistics whenever the
//! cap is not hit; past the cap, excess values still count toward
//! count/sum/max and the snapshot reports how many samples back its
//! percentiles.

use std::collections::VecDeque;

/// Default per-bucket bound on raw values retained for percentiles.
pub const DEFAULT_SAMPLE_CAP: usize = 8192;

/// One ring bucket: aggregates plus capped raw samples.
#[derive(Debug, Clone, Default)]
struct BucketAgg {
    /// Absolute bucket number (`position / bucket_width`).
    index: u64,
    count: u64,
    sum: u64,
    max: u64,
    samples: Vec<u64>,
}

/// Aggregate statistics over one bucket or one whole window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Observations covered.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (the high-watermark for gauge streams).
    pub max: u64,
    /// Nearest-rank p50 over retained samples (0 when empty).
    pub p50: u64,
    /// Nearest-rank p95 over retained samples.
    pub p95: u64,
    /// Nearest-rank p99 over retained samples.
    pub p99: u64,
    /// Samples backing the percentiles (`< count` only past the sample cap).
    pub sampled: u64,
}

impl WindowStats {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn from_samples(count: u64, sum: u64, max: u64, mut samples: Vec<u64>) -> WindowStats {
        samples.sort_unstable();
        let pick = |q: f64| -> u64 {
            if samples.is_empty() {
                return 0;
            }
            // Nearest-rank: the ceil(q*N)-th smallest value.
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        WindowStats {
            count,
            sum,
            max,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            sampled: samples.len() as u64,
        }
    }
}

/// A ring-buffer sliding window over a one-dimensional clock.
///
/// `bucket_width` clock units per bucket, `buckets` live buckets — the
/// retained span is their product. The ring advances lazily: an observation
/// (or an explicit [`SlidingWindow::advance`]) at a later position rotates
/// expired buckets out and accounts them into the all-time totals.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    bucket_width: u64,
    capacity: usize,
    sample_cap: usize,
    ring: VecDeque<BucketAgg>,
    /// Observations whose position predates the retained span.
    late: u64,
    /// All-time observation count (window membership notwithstanding).
    total_count: u64,
    /// All-time value sum.
    total_sum: u64,
    /// All-time maximum.
    total_max: u64,
}

impl SlidingWindow {
    /// A window of `buckets` buckets, each `bucket_width` clock units wide,
    /// retaining up to `sample_cap` raw values per bucket for percentiles.
    pub fn new(bucket_width: u64, buckets: usize, sample_cap: usize) -> SlidingWindow {
        SlidingWindow {
            bucket_width: bucket_width.max(1),
            capacity: buckets.max(1),
            sample_cap: sample_cap.max(1),
            ring: VecDeque::new(),
            late: 0,
            total_count: 0,
            total_sum: 0,
            total_max: 0,
        }
    }

    /// A window with the default per-bucket sample cap.
    pub fn with_buckets(bucket_width: u64, buckets: usize) -> SlidingWindow {
        SlidingWindow::new(bucket_width, buckets, DEFAULT_SAMPLE_CAP)
    }

    /// Clock units per bucket.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Clock span the window retains (`bucket_width * buckets`).
    pub fn span(&self) -> u64 {
        self.bucket_width.saturating_mul(self.capacity as u64)
    }

    /// Observations that arrived too old for the retained span.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// All-time `(count, sum, max)`, independent of window membership.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.total_count, self.total_sum, self.total_max)
    }

    fn newest_index(&self) -> Option<u64> {
        self.ring.back().map(|b| b.index)
    }

    /// Rotate the ring forward so it covers the bucket of clock position
    /// `now`. Buckets older than the retained span fall out.
    pub fn advance(&mut self, now: u64) {
        let bucket = now / self.bucket_width;
        if self.newest_index().is_some_and(|newest| bucket <= newest) {
            return;
        }
        self.ring.push_back(BucketAgg { index: bucket, ..BucketAgg::default() });
        let oldest_live = bucket.saturating_sub(self.capacity as u64 - 1);
        while self.ring.front().is_some_and(|b| b.index < oldest_live) {
            self.ring.pop_front();
        }
    }

    /// Record one observation at clock position `at`.
    ///
    /// Gauge streams record sampled readings here too — the window statistic
    /// that matters for them is [`WindowStats::max`], the high-watermark.
    pub fn observe(&mut self, at: u64, value: u64) {
        self.total_count += 1;
        self.total_sum = self.total_sum.saturating_add(value);
        self.total_max = self.total_max.max(value);
        self.advance(at);
        let bucket = at / self.bucket_width;
        let newest = self.newest_index().expect("advance seeded the ring");
        // Find the live bucket for `at`; an older-than-retained position is
        // counted as late instead of corrupting a wrong bucket. A position
        // merely older than the oldest *materialized* bucket is still live
        // (sparse streams materialize buckets out of order).
        let oldest_live = newest.saturating_sub(self.capacity as u64 - 1);
        if bucket < oldest_live {
            self.late += 1;
            return;
        }
        let slot = match self.ring.iter_mut().find(|b| b.index == bucket) {
            Some(slot) => slot,
            None => {
                // Live but never materialized (sparse stream): insert in order.
                let pos =
                    self.ring.iter().position(|b| b.index > bucket).unwrap_or(self.ring.len());
                self.ring.insert(pos, BucketAgg { index: bucket, ..BucketAgg::default() });
                &mut self.ring[pos]
            }
        };
        slot.count += 1;
        slot.sum = slot.sum.saturating_add(value);
        slot.max = slot.max.max(value);
        if slot.samples.len() < self.sample_cap {
            slot.samples.push(value);
        }
    }

    /// Statistics over everything inside the window as of clock position
    /// `now` (rotating first, so expired buckets are excluded).
    pub fn snapshot(&mut self, now: u64) -> WindowStats {
        self.advance(now);
        let mut count = 0;
        let mut sum = 0u64;
        let mut max = 0;
        let mut samples = Vec::new();
        for b in &self.ring {
            count += b.count;
            sum = sum.saturating_add(b.sum);
            max = max.max(b.max);
            samples.extend_from_slice(&b.samples);
        }
        WindowStats::from_samples(count, sum, max, samples)
    }

    /// Observations per clock unit over the retained span as of `now`.
    pub fn rate(&mut self, now: u64) -> f64 {
        let stats = self.snapshot(now);
        stats.count as f64 / self.span() as f64
    }

    /// Statistics for one absolute bucket (`None` if it was never observed or
    /// has already rotated out). The soak timeline reads each bucket as it
    /// closes — one [`WindowStats`] per tick.
    pub fn bucket_stats(&self, index: u64) -> Option<WindowStats> {
        let b = self.ring.iter().find(|b| b.index == index)?;
        Some(WindowStats::from_samples(b.count, b.sum, b.max, b.samples.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_slides_and_drops_expired_buckets() {
        let mut w = SlidingWindow::with_buckets(10, 3); // span 30
        w.observe(5, 100);
        w.observe(15, 200);
        w.observe(25, 300);
        let s = w.snapshot(29);
        assert_eq!((s.count, s.sum, s.max), (3, 600, 300));
        // Position 35 opens bucket 3; bucket 0 (positions 0..10) expires.
        let s = w.snapshot(35);
        assert_eq!((s.count, s.sum), (2, 500));
        // All-time totals are unaffected by expiry.
        assert_eq!(w.totals(), (3, 600, 300));
    }

    #[test]
    fn percentiles_are_exact_nearest_rank_under_the_cap() {
        let mut w = SlidingWindow::with_buckets(1000, 4);
        for v in 1..=100u64 {
            w.observe(v, v);
        }
        let s = w.snapshot(100);
        assert_eq!(s.count, 100);
        assert_eq!(s.sampled, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn observation_order_does_not_change_snapshots() {
        let values: Vec<(u64, u64)> = (0..50).map(|i| (i * 7 % 40, i + 1)).collect();
        let mut fwd = SlidingWindow::with_buckets(10, 4);
        for &(at, v) in &values {
            fwd.observe(at, v);
        }
        let mut rev = SlidingWindow::with_buckets(10, 4);
        for &(at, v) in values.iter().rev() {
            rev.observe(at, v);
        }
        assert_eq!(fwd.snapshot(39), rev.snapshot(39));
        assert_eq!(fwd.late(), rev.late());
    }

    #[test]
    fn late_observations_are_counted_not_misfiled() {
        let mut w = SlidingWindow::with_buckets(10, 2); // span 20
        w.observe(100, 1);
        w.observe(5, 9); // bucket 0 expired long ago
        assert_eq!(w.late(), 1);
        let s = w.snapshot(100);
        assert_eq!(s.count, 1, "late value stays out of the window");
        assert_eq!(w.totals().0, 2, "but still counts all-time");
    }

    #[test]
    fn sample_cap_keeps_counts_exact_and_reports_sampling() {
        let mut w = SlidingWindow::new(10, 2, 4);
        for i in 0..10u64 {
            w.observe(3, i);
        }
        let s = w.snapshot(3);
        assert_eq!(s.count, 10);
        assert_eq!(s.sampled, 4);
        assert_eq!(s.max, 9, "max is exact past the cap");
    }

    #[test]
    fn bucket_stats_reads_one_closed_tick() {
        let mut w = SlidingWindow::with_buckets(10, 8);
        w.observe(12, 5);
        w.observe(17, 7);
        w.observe(23, 1);
        let b1 = w.bucket_stats(1).expect("bucket 1 live");
        assert_eq!((b1.count, b1.sum, b1.max), (2, 12, 7));
        assert_eq!(b1.p50, 5);
        assert!(w.bucket_stats(5).is_none());
    }

    #[test]
    fn gauge_stream_high_watermark() {
        let mut w = SlidingWindow::with_buckets(100, 2);
        for (at, depth) in [(10, 3), (50, 8), (90, 2)] {
            w.observe(at, depth);
        }
        assert_eq!(w.snapshot(99).max, 8);
        // Two buckets later the spike has aged out.
        assert_eq!(w.snapshot(299).max, 0);
    }
}
