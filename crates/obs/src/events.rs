//! Structured trace events: a thread-safe, bounded, allocation-light event log
//! for the pipeline (DESIGN.md §9).
//!
//! Every pipeline stage can emit [`Event`]s describing what it saw and decided
//! for one example. Events are recorded into a per-run [`EventRecorder`]
//! (lock-cheap, capped per example) and published into a shared [`EventSink`]
//! as one atomic batch per example — mirroring how per-run
//! [`crate::MetricsRegistry`] snapshots are absorbed into a shared registry, so
//! concurrent runs never interleave partial event streams.
//!
//! # Determinism contract
//!
//! The sink's final contents are a pure function of the *set* of published
//! batches, never of their arrival order:
//!
//! - one batch per example, keyed by example index, capped at a fixed number of
//!   events ([`EventSink::per_example_cap`]) applied at record time;
//! - the sink keeps at most [`EventSink::max_examples`] batches; on overflow it
//!   evicts the batch with the **largest** example index, so the surviving set
//!   is always the smallest-indexed examples regardless of publish order;
//! - [`EventSink::drain`] flattens batches in ascending example order.
//!
//! Events carry no timestamps (the pipeline runs on [`crate::Clock::Virtual`]
//! work units), so the drained stream — and its [`to_jsonl`] rendering — is
//! byte-identical for any worker count.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default bound on distinct example batches a sink retains.
pub const DEFAULT_MAX_EXAMPLES: usize = 4096;

/// Default per-example event cap applied at record time.
pub const DEFAULT_EVENTS_PER_EXAMPLE: usize = 64;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// Unsigned integer (counts, token totals, indices).
    U64(u64),
    /// Floating-point (probabilities, qualities); serialized with `{:?}`
    /// (shortest round-trippable form) so output is byte-stable.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short label (fixer categories, support levels). Kept small by
    /// convention — events are diagnostics, not payload storage.
    Str(String),
}

impl EventValue {
    fn write_json(&self, out: &mut String) {
        match self {
            EventValue::U64(v) => write!(out, "{v}").unwrap(),
            EventValue::F64(v) => write!(out, "{v:?}").unwrap(),
            EventValue::Bool(v) => write!(out, "{v}").unwrap(),
            EventValue::Str(v) => write_escaped(out, v),
        }
    }
}

/// One structured trace event: which example, which stage, what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position of the example within its split.
    pub example_idx: usize,
    /// Per-example sequence number, assigned at record time (emission order
    /// within one run is deterministic, so so is `seq`).
    pub seq: u32,
    /// Stage label (by convention a [`crate::Stage::name`], but free-form for
    /// sub-steps).
    pub stage: &'static str,
    /// What happened ("pruned", "voted", "fix", ...).
    pub kind: &'static str,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(&'static str, EventValue)>,
}

impl Event {
    /// Render as one JSON object (one JSONL line, without the trailing
    /// newline). Field order is fixed — `example`, `seq`, `stage`, `kind`,
    /// `fields` — so equal events always produce byte-identical text.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        write!(out, "{{\"example\":{},\"seq\":{},\"stage\":", self.example_idx, self.seq).unwrap();
        write_escaped(&mut out, self.stage);
        out.push_str(",\"kind\":");
        write_escaped(&mut out, self.kind);
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, key);
            out.push(':');
            value.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Render a drained event slice as JSONL (one event per line, trailing
/// newline included when non-empty).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Default)]
struct RecorderState {
    events: Vec<Event>,
    dropped: u64,
}

/// Per-run event recorder for one example.
///
/// Cheap to create per pipeline run; `emit` appends under a private mutex (so
/// a run may share the recorder across helpers), the per-example cap is
/// enforced at record time, and [`EventSink::publish`] consumes the recorder
/// as one atomic batch.
#[derive(Debug)]
pub struct EventRecorder {
    example_idx: usize,
    cap: usize,
    inner: Mutex<RecorderState>,
}

impl EventRecorder {
    /// A recorder for the example at `example_idx`, keeping at most `cap`
    /// events (further emissions are counted as dropped).
    pub fn new(example_idx: usize, cap: usize) -> Self {
        EventRecorder { example_idx, cap, inner: Mutex::new(RecorderState::default()) }
    }

    /// The example this recorder belongs to.
    pub fn example_idx(&self) -> usize {
        self.example_idx
    }

    /// Record one event. Fields are copied; events beyond the cap are counted
    /// but not stored.
    pub fn emit(
        &self,
        stage: &'static str,
        kind: &'static str,
        fields: &[(&'static str, EventValue)],
    ) {
        let mut state = self.inner.lock();
        if state.events.len() >= self.cap {
            state.dropped += 1;
            return;
        }
        let seq = state.events.len() as u32;
        state.events.push(Event {
            example_idx: self.example_idx,
            seq,
            stage,
            kind,
            fields: fields.to_vec(),
        });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Emissions rejected by the cap so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    fn into_batch(self) -> (usize, Vec<Event>, u64) {
        let state = self.inner.into_inner();
        (self.example_idx, state.events, state.dropped)
    }
}

#[derive(Debug, Default)]
struct SinkState {
    batches: BTreeMap<usize, Vec<Event>>,
    dropped_batches: u64,
    dropped_events: u64,
}

/// What [`EventSink::drain`] returns: the retained events in ascending example
/// order plus the drop accounting (both deterministic for any publish order).
#[derive(Debug, Clone, PartialEq)]
pub struct DrainedEvents {
    /// Retained events, ordered by `(example_idx, seq)`.
    pub events: Vec<Event>,
    /// Whole example batches evicted by the [`EventSink::max_examples`] bound.
    pub dropped_batches: u64,
    /// Events dropped by the per-example cap, summed over every published
    /// batch (including later-evicted ones — the sum is order-independent).
    pub dropped_events: u64,
}

/// The shared, bounded event sink (see the module docs for the determinism
/// contract).
#[derive(Debug)]
pub struct EventSink {
    max_examples: usize,
    per_example_cap: usize,
    inner: Mutex<SinkState>,
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::bounded(DEFAULT_MAX_EXAMPLES, DEFAULT_EVENTS_PER_EXAMPLE)
    }
}

impl EventSink {
    /// A sink retaining at most `max_examples` example batches of at most
    /// `per_example_cap` events each (both clamped to at least 1).
    pub fn bounded(max_examples: usize, per_example_cap: usize) -> Self {
        EventSink {
            max_examples: max_examples.max(1),
            per_example_cap: per_example_cap.max(1),
            inner: Mutex::new(SinkState::default()),
        }
    }

    /// The bound on retained example batches.
    pub fn max_examples(&self) -> usize {
        self.max_examples
    }

    /// The per-example event cap recorders created via [`EventSink::recorder`]
    /// enforce.
    pub fn per_example_cap(&self) -> usize {
        self.per_example_cap
    }

    /// A fresh recorder for one example, capped to this sink's policy.
    pub fn recorder(&self, example_idx: usize) -> EventRecorder {
        EventRecorder::new(example_idx, self.per_example_cap)
    }

    /// Publish a finished recorder as one atomic batch. A second publish for
    /// the same example appends (re-sequenced, still capped). When the batch
    /// bound overflows, the largest-indexed batch is evicted — possibly the
    /// incoming one — keeping the retained set order-independent.
    pub fn publish(&self, recorder: EventRecorder) {
        let (idx, events, rec_dropped) = recorder.into_batch();
        let mut state = self.inner.lock();
        state.dropped_events += rec_dropped;
        let cap = self.per_example_cap;
        let mut capped = 0u64;
        let slot = state.batches.entry(idx).or_default();
        for mut e in events {
            if slot.len() >= cap {
                capped += 1;
                continue;
            }
            e.seq = slot.len() as u32;
            slot.push(e);
        }
        state.dropped_events += capped;
        while state.batches.len() > self.max_examples {
            let largest = *state.batches.keys().next_back().expect("non-empty over bound");
            state.batches.remove(&largest);
            state.dropped_batches += 1;
        }
    }

    /// Number of retained example batches.
    pub fn len(&self) -> usize {
        self.inner.lock().batches.len()
    }

    /// Whether no batch is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current `(dropped batches, dropped events)` without draining — feeds
    /// the event-loss counters of the Prometheus exposition. Both reset to
    /// zero when [`EventSink::drain`] takes the accumulated state.
    pub fn loss(&self) -> (u64, u64) {
        let st = self.inner.lock();
        (st.dropped_batches, st.dropped_events)
    }

    /// Atomically take everything: retained events flattened in ascending
    /// example order, plus drop accounting. Resets the sink.
    pub fn drain(&self) -> DrainedEvents {
        let state = std::mem::take(&mut *self.inner.lock());
        DrainedEvents {
            events: state.batches.into_values().flatten().collect(),
            dropped_batches: state.dropped_batches,
            dropped_events: state.dropped_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(sink: &EventSink, idx: usize, n: usize) {
        let rec = sink.recorder(idx);
        for i in 0..n {
            rec.emit("stage", "kind", &[("i", EventValue::U64(i as u64))]);
        }
        sink.publish(rec);
    }

    #[test]
    fn recorder_caps_and_counts_drops() {
        let rec = EventRecorder::new(3, 2);
        for _ in 0..5 {
            rec.emit("s", "k", &[]);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let sink = EventSink::bounded(8, 2);
        sink.publish(rec);
        let d = sink.drain();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.dropped_events, 3);
        assert_eq!(d.events[0].seq, 0);
        assert_eq!(d.events[1].seq, 1);
    }

    #[test]
    fn drain_is_independent_of_publish_order() {
        // More batches than the bound, published in three different orders:
        // the retained set must always be the smallest example indices and the
        // rendered JSONL byte-identical.
        let orders: [&[usize]; 3] = [&[0, 1, 2, 3, 4], &[4, 3, 2, 1, 0], &[2, 4, 0, 3, 1]];
        let mut renders = Vec::new();
        for order in orders {
            let sink = EventSink::bounded(3, 4);
            for &idx in order {
                batch(&sink, idx, idx + 1);
            }
            let d = sink.drain();
            assert_eq!(d.dropped_batches, 2, "order {order:?}");
            let kept: Vec<usize> = d.events.iter().map(|e| e.example_idx).collect();
            assert!(kept.iter().all(|&i| i <= 2), "kept {kept:?} for order {order:?}");
            renders.push(to_jsonl(&d.events));
        }
        assert_eq!(renders[0], renders[1]);
        assert_eq!(renders[1], renders[2]);
    }

    #[test]
    fn republish_appends_with_resequencing() {
        let sink = EventSink::bounded(4, 3);
        batch(&sink, 7, 2);
        batch(&sink, 7, 2);
        let d = sink.drain();
        assert_eq!(d.events.len(), 3, "second batch re-capped");
        assert_eq!(d.dropped_events, 1);
        let seqs: Vec<u32> = d.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn jsonl_rendering_is_stable_and_escaped() {
        let mut e = Event {
            example_idx: 12,
            seq: 0,
            stage: "schema-pruning",
            kind: "pruned",
            fields: vec![
                ("quality", EventValue::F64(0.5)),
                ("covered", EventValue::Bool(true)),
                ("note", EventValue::Str("a\"b\\c\n".into())),
                ("cols", EventValue::U64(18)),
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"example\":12,\"seq\":0,\"stage\":\"schema-pruning\",\"kind\":\"pruned\",\
             \"fields\":{\"quality\":0.5,\"covered\":true,\"note\":\"a\\\"b\\\\c\\n\",\"cols\":18}}"
        );
        e.fields.clear();
        assert_eq!(to_jsonl(&[e.clone()]), format!("{}\n", e.to_json()));
        assert_eq!(to_jsonl(&[]), "");
    }

    #[test]
    fn concurrent_publishes_never_tear_batches() {
        let sink = std::sync::Arc::new(EventSink::bounded(64, 8));
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let sink = std::sync::Arc::clone(&sink);
                scope.spawn(move || {
                    for idx in (t * 8)..(t * 8 + 8) {
                        let rec = sink.recorder(idx);
                        for i in 0..4 {
                            rec.emit("s", "k", &[("i", EventValue::U64(i))]);
                        }
                        sink.publish(rec);
                    }
                });
            }
        });
        let d = sink.drain();
        assert_eq!(d.events.len(), 64 * 4);
        // Every example's events are contiguous and in seq order.
        for chunk in d.events.chunks(4) {
            assert!(chunk
                .windows(2)
                .all(|w| { w[0].example_idx == w[1].example_idx && w[0].seq + 1 == w[1].seq }));
        }
    }
}
