//! Per-operator counters for the vectorized execution engine: how many batches
//! each operator processed, rows scanned, hash-join probe traffic, nested-loop
//! fallbacks, aggregate groups and column-store builds.
//!
//! Like [`CacheStats`](crate::CacheStats), these are interleaving-dependent
//! under parallel evaluation (workers share one session), so they live outside
//! the deterministic report surface and are rendered on stdout by
//! `repro --metrics` only.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live per-operator counters for a session's vectorized engine. All
/// operations are relaxed atomics: diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct ExecOpCounters {
    batches: AtomicU64,
    rows_scanned: AtomicU64,
    hash_probes: AtomicU64,
    hash_probe_hits: AtomicU64,
    nested_loop_fallbacks: AtomicU64,
    hash_agg_groups: AtomicU64,
    column_builds: AtomicU64,
}

impl ExecOpCounters {
    /// Record one operator batch (one operator pass over a selection).
    pub fn batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` base-table rows entering the pipeline (scan or join build).
    pub fn scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one hash-join probe with a non-NULL key; `hit` says whether it
    /// matched at least one build row.
    pub fn probe(&self, hit: bool) {
        self.hash_probes.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hash_probe_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one join step that fell back to the nested-loop path.
    pub fn nested_loop_fallback(&self) {
        self.nested_loop_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` groups built by one hash-aggregate pass.
    pub fn groups(&self, n: u64) {
        self.hash_agg_groups.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one table transposed into column vectors.
    pub fn column_build(&self) {
        self.column_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> ExecOpStats {
        ExecOpStats {
            batches: self.batches.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            hash_probes: self.hash_probes.load(Ordering::Relaxed),
            hash_probe_hits: self.hash_probe_hits.load(Ordering::Relaxed),
            nested_loop_fallbacks: self.nested_loop_fallbacks.load(Ordering::Relaxed),
            hash_agg_groups: self.hash_agg_groups.load(Ordering::Relaxed),
            column_builds: self.column_builds.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a session's vectorized-operator traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOpStats {
    /// Operator batches processed (scan/join/filter/aggregate passes).
    pub batches: u64,
    /// Base-table rows read by scans and join builds.
    pub rows_scanned: u64,
    /// Hash-join probes issued (non-NULL keys only).
    pub hash_probes: u64,
    /// Probes that matched at least one build-side row.
    pub hash_probe_hits: u64,
    /// Join steps that fell back to the nested-loop path (degenerate ON).
    pub nested_loop_fallbacks: u64,
    /// Groups produced by hash aggregation.
    pub hash_agg_groups: u64,
    /// Tables transposed into column vectors.
    pub column_builds: u64,
}

impl ExecOpStats {
    /// Probe hit ratio in percent (0 when no probes were issued).
    pub fn probe_hit_pct(&self) -> f64 {
        if self.hash_probes == 0 {
            0.0
        } else {
            self.hash_probe_hits as f64 * 100.0 / self.hash_probes as f64
        }
    }

    /// Render an aligned stdout table (the `repro --metrics` operator section).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Exec operators            count\n\
             -------------------------------\n",
        );
        let rows = [
            ("batches", self.batches),
            ("rows scanned", self.rows_scanned),
            ("hash probes", self.hash_probes),
            ("hash probe hits", self.hash_probe_hits),
            ("nested-loop fallbacks", self.nested_loop_fallbacks),
            ("hash agg groups", self.hash_agg_groups),
            ("column builds", self.column_builds),
        ];
        for (name, v) in rows {
            out.push_str(&format!("{name:<21} {v:>9}\n"));
        }
        out.push_str(&format!("hash probe hit%       {:>9.1}\n", self.probe_hit_pct()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_and_render() {
        let c = ExecOpCounters::default();
        c.batch();
        c.batch();
        c.scanned(200);
        c.probe(true);
        c.probe(false);
        c.probe(true);
        c.nested_loop_fallback();
        c.groups(5);
        c.column_build();
        let s = c.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.rows_scanned, 200);
        assert_eq!(s.hash_probes, 3);
        assert_eq!(s.hash_probe_hits, 2);
        assert_eq!(s.nested_loop_fallbacks, 1);
        assert_eq!(s.hash_agg_groups, 5);
        assert_eq!(s.column_builds, 1);
        assert!((s.probe_hit_pct() - 200.0 / 3.0).abs() < 1e-9);
        let rendered = s.render();
        assert!(rendered.contains("hash probes"));
        assert!(rendered.contains("nested-loop fallbacks"));
    }

    #[test]
    fn empty_stats_have_zero_hit_pct() {
        assert_eq!(ExecOpStats::default().probe_hit_pct(), 0.0);
    }
}
