//! Declarative service-level objectives over windowed telemetry
//! (DESIGN.md §16).
//!
//! An [`SloSpec`] names one objective: "p(observed value ≤ `target`) stays
//! above `1 - budget` over the window". An [`SloTracker`] pairs the spec with
//! a [`SlidingWindow`](crate::window::SlidingWindow) of pass/fail
//! observations and reduces it to a burn rate — violation fraction divided by
//! the error budget — and a three-state [`SloVerdict`]:
//!
//! * **Healthy** — burn ≤ 1: the window spends its budget no faster than
//!   allotted.
//! * **Degraded** — 1 < burn < breach multiplier: overspending; a sustained
//!   run at this rate will exhaust the budget.
//! * **Breached** — burn ≥ breach multiplier (default 4×): the objective is
//!   being missed outright.
//!
//! Latency objectives observe each completion's stage latency against the
//! target; admission objectives (shed/reject tracking) observe 1 per shed and
//! 0 per accept against a target of 0, so any shedding burns budget. Like the
//! windows underneath, trackers are clock-agnostic: verdicts computed at
//! virtual positions inherit the determinism contract.

use crate::window::SlidingWindow;

/// Default burn-rate multiple at which `Degraded` escalates to `Breached`.
pub const DEFAULT_BREACH_BURN: f64 = 4.0;

/// Three-state health verdict for one objective (or a whole service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloVerdict {
    /// Burn ≤ 1: budget spent no faster than allotted.
    Healthy,
    /// 1 < burn < breach multiplier: overspending the budget.
    Degraded,
    /// Burn ≥ breach multiplier: the objective is being missed outright.
    Breached,
}

impl SloVerdict {
    /// Every verdict, best to worst.
    pub const ALL: [SloVerdict; 3] =
        [SloVerdict::Healthy, SloVerdict::Degraded, SloVerdict::Breached];

    /// Stable lowercase name used in wire JSON and timeline files.
    pub fn name(&self) -> &'static str {
        match self {
            SloVerdict::Healthy => "healthy",
            SloVerdict::Degraded => "degraded",
            SloVerdict::Breached => "breached",
        }
    }

    /// Inverse of [`SloVerdict::name`].
    pub fn from_name(name: &str) -> Option<SloVerdict> {
        SloVerdict::ALL.into_iter().find(|v| v.name() == name)
    }

    /// The worse of two verdicts — service health is the max over objectives.
    pub fn worst(self, other: SloVerdict) -> SloVerdict {
        self.max(other)
    }
}

/// One declarative objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Short stable identifier ("translate_latency", "admission", ...).
    pub name: String,
    /// Per-observation threshold; values strictly above it are violations.
    pub target: u64,
    /// Tolerated violation fraction over the window (0 < budget ≤ 1).
    pub budget: f64,
}

impl SloSpec {
    /// An objective named `name`: values above `target` may make up at most
    /// the `budget` fraction of the window (budget is clamped into (0, 1]).
    pub fn new(name: impl Into<String>, target: u64, budget: f64) -> SloSpec {
        SloSpec { name: name.into(), target, budget: budget.clamp(f64::MIN_POSITIVE, 1.0) }
    }
}

/// Point-in-time report for one tracked objective.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The spec's stable identifier.
    pub name: String,
    /// The spec's per-observation threshold.
    pub target: u64,
    /// The spec's tolerated violation fraction.
    pub budget: f64,
    /// Observations inside the window.
    pub observed: u64,
    /// Window observations above target.
    pub violations: u64,
    /// `violation fraction / budget`; 0 when the window is empty.
    pub burn_rate: f64,
    /// The three-state reduction of the burn rate.
    pub verdict: SloVerdict,
}

/// Spec + violation window + burn-rate reduction.
#[derive(Debug, Clone)]
pub struct SloTracker {
    spec: SloSpec,
    /// Each observation is recorded as 1 (violation) or 0 (within target).
    window: SlidingWindow,
    breach_burn: f64,
    /// All-time count of transitions into a non-Healthy verdict ("overload
    /// episodes" in the soak summary).
    episodes: u64,
    last_verdict: SloVerdict,
}

impl SloTracker {
    /// Track `spec` over a window of `buckets` × `bucket_width` clock units.
    pub fn new(spec: SloSpec, bucket_width: u64, buckets: usize) -> SloTracker {
        SloTracker {
            spec,
            window: SlidingWindow::with_buckets(bucket_width, buckets),
            breach_burn: DEFAULT_BREACH_BURN,
            episodes: 0,
            last_verdict: SloVerdict::Healthy,
        }
    }

    /// Override the burn multiple at which Degraded becomes Breached.
    pub fn with_breach_burn(mut self, breach_burn: f64) -> SloTracker {
        self.breach_burn = breach_burn.max(1.0);
        self
    }

    /// The objective being tracked.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Record one observation at clock position `at`; `value` is compared
    /// against the spec target.
    pub fn observe(&mut self, at: u64, value: u64) {
        self.window.observe(at, u64::from(value > self.spec.target));
    }

    /// All-time transitions into Degraded/Breached, as of the last
    /// [`SloTracker::status`] call.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Reduce the window as of clock position `now`.
    pub fn status(&mut self, now: u64) -> SloStatus {
        let stats = self.window.snapshot(now);
        let burn_rate = if stats.count == 0 {
            0.0
        } else {
            (stats.sum as f64 / stats.count as f64) / self.spec.budget
        };
        let verdict = if burn_rate >= self.breach_burn {
            SloVerdict::Breached
        } else if burn_rate > 1.0 {
            SloVerdict::Degraded
        } else {
            SloVerdict::Healthy
        };
        if verdict > SloVerdict::Healthy && self.last_verdict == SloVerdict::Healthy {
            self.episodes += 1;
        }
        self.last_verdict = verdict;
        SloStatus {
            name: self.spec.name.clone(),
            target: self.spec.target,
            budget: self.spec.budget,
            observed: stats.count,
            violations: stats.sum,
            burn_rate,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(target: u64, budget: f64) -> SloTracker {
        SloTracker::new(SloSpec::new("t", target, budget), 100, 4)
    }

    #[test]
    fn verdict_names_round_trip() {
        for v in SloVerdict::ALL {
            assert_eq!(SloVerdict::from_name(v.name()), Some(v));
        }
        assert_eq!(SloVerdict::from_name("nope"), None);
    }

    #[test]
    fn empty_window_is_healthy() {
        let mut t = tracker(10, 0.1);
        let s = t.status(0);
        assert_eq!(s.verdict, SloVerdict::Healthy);
        assert_eq!(s.burn_rate, 0.0);
    }

    #[test]
    fn burn_rate_partitions_the_three_states() {
        // Budget 10%: 1 violation in 10 → burn 1.0 (healthy, at the line).
        let mut t = tracker(10, 0.1);
        for i in 0..10u64 {
            t.observe(i, if i == 0 { 99 } else { 1 });
        }
        let s = t.status(9);
        assert_eq!(s.burn_rate, 1.0);
        assert_eq!(s.verdict, SloVerdict::Healthy);

        // 2 in 10 → burn 2.0 → degraded.
        let mut t = tracker(10, 0.1);
        for i in 0..10u64 {
            t.observe(i, if i < 2 { 99 } else { 1 });
        }
        let s = t.status(9);
        assert_eq!(s.burn_rate, 2.0);
        assert_eq!(s.verdict, SloVerdict::Degraded);

        // 5 in 10 → burn 5.0 ≥ 4 → breached.
        let mut t = tracker(10, 0.1);
        for i in 0..10u64 {
            t.observe(i, if i < 5 { 99 } else { 1 });
        }
        let s = t.status(9);
        assert_eq!(s.verdict, SloVerdict::Breached);
        assert_eq!(s.violations, 5);
        assert_eq!(s.observed, 10);
    }

    #[test]
    fn admission_slo_sheds_burn_budget() {
        // Target 0 with a small budget: shed = observe 1, admit = observe 0.
        let mut t = tracker(0, 0.05);
        for i in 0..20u64 {
            t.observe(i, u64::from(i % 10 == 0)); // 2 sheds in 20
        }
        let s = t.status(19);
        assert_eq!(s.violations, 2);
        assert_eq!(s.burn_rate, 2.0);
        assert_eq!(s.verdict, SloVerdict::Degraded);
    }

    #[test]
    fn recovery_returns_to_healthy_and_counts_one_episode() {
        let mut t = tracker(10, 0.1); // window span 400
        for i in 0..10u64 {
            t.observe(i, 99);
        }
        assert_eq!(t.status(9).verdict, SloVerdict::Breached);
        assert_eq!(t.episodes(), 1);
        // Stay bad a while longer — same episode, no new transition.
        for i in 10..20u64 {
            t.observe(i, 99);
        }
        assert!(t.status(19).verdict > SloVerdict::Healthy);
        assert_eq!(t.episodes(), 1);
        // Clean traffic after the bad buckets rotate out.
        for i in 500..600u64 {
            t.observe(i, 1);
        }
        assert_eq!(t.status(599).verdict, SloVerdict::Healthy);
        assert_eq!(t.episodes(), 1);
        // A second incident is a second episode.
        for i in 600..700u64 {
            t.observe(i, 99);
        }
        assert_eq!(t.status(699).verdict, SloVerdict::Breached);
        assert_eq!(t.episodes(), 2);
    }

    #[test]
    fn worst_is_max() {
        use SloVerdict::*;
        assert_eq!(Healthy.worst(Degraded), Degraded);
        assert_eq!(Breached.worst(Degraded), Breached);
        assert_eq!(Healthy.worst(Healthy), Healthy);
    }
}
