//! Execution-cache observability: lock-free hit/miss/eviction counters for the
//! three memoization stages of an execution session (parse, plan, result), with
//! a serializable point-in-time snapshot.
//!
//! These counters live deliberately *outside* [`StageMetrics`]: cache traffic
//! depends on thread interleaving under parallel evaluation, so it must never
//! enter the deterministic report surface (which is byte-identical for any
//! `--jobs` count). They are rendered on stdout by `repro --metrics` instead.
//!
//! [`StageMetrics`]: crate::StageMetrics

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live hit/miss/eviction counters for one cache stage. All operations are
/// relaxed atomics: the counters are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct StageCacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl StageCacheCounters {
    /// Record a cache hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an LRU eviction.
    pub fn eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot (the `entries` gauge is filled by the owner,
    /// which knows the cache's current size).
    pub fn snapshot(&self, entries: u64) -> StageCacheStats {
        StageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// Live counters for every stage of an execution session.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// SQL-text → AST memoization.
    pub parse: StageCacheCounters,
    /// (db, SQL) → compiled plan memoization.
    pub plan: StageCacheCounters,
    /// (db, SQL) → result-set memoization.
    pub result: StageCacheCounters,
    /// (db, table) → column-vector memoization (vectorized engine).
    pub columns: StageCacheCounters,
}

/// Snapshot of one cache stage: monotonic hit/miss/eviction counts plus the
/// current entry gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl StageCacheStats {
    /// Hit ratio in percent (0 when the stage saw no traffic).
    pub fn hit_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 * 100.0 / total as f64
        }
    }
}

/// Snapshot of a whole execution session's cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Parse-stage stats.
    pub parse: StageCacheStats,
    /// Plan-stage stats.
    pub plan: StageCacheStats,
    /// Result-stage stats.
    pub result: StageCacheStats,
    /// Column-store stats (vectorized engine; all-zero under the legacy
    /// interpreter).
    #[serde(default)]
    pub columns: StageCacheStats,
}

impl CacheStats {
    /// Total lookups across all stages.
    pub fn lookups(&self) -> u64 {
        [self.parse, self.plan, self.result, self.columns].iter().map(|s| s.hits + s.misses).sum()
    }

    /// Render an aligned stdout table (the `repro --metrics` cache section).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Exec cache         hits     misses  evictions    entries   hit%\n\
             -----------------------------------------------------------------\n",
        );
        for (name, s) in [
            ("parse", &self.parse),
            ("plan", &self.plan),
            ("result", &self.result),
            ("columns", &self.columns),
        ] {
            out.push_str(&format!(
                "{name:<12} {:>10} {:>10} {:>10} {:>10} {:>6.1}\n",
                s.hits,
                s.misses,
                s.evictions,
                s.entries,
                s.hit_pct()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_and_render() {
        let c = CacheCounters::default();
        c.parse.hit();
        c.parse.hit();
        c.parse.miss();
        c.result.miss();
        c.result.eviction();
        let stats = CacheStats {
            parse: c.parse.snapshot(1),
            plan: c.plan.snapshot(0),
            result: c.result.snapshot(0),
            columns: c.columns.snapshot(0),
        };
        assert_eq!(stats.parse.hits, 2);
        assert_eq!(stats.parse.misses, 1);
        assert_eq!(stats.result.evictions, 1);
        assert_eq!(stats.parse.entries, 1);
        assert!((stats.parse.hit_pct() - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.lookups(), 4);
        let rendered = stats.render();
        assert!(rendered.contains("parse"));
        assert!(rendered.contains("result"));
        assert!(rendered.contains("columns"));
    }
}
