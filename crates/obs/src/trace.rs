//! Request-scoped hierarchical tracing (DESIGN.md §14).
//!
//! A [`TraceRecorder`] captures one request's span tree: every instrumented
//! scope — admission queue wait, batch coalescing, each pipeline
//! [`Stage`](crate::Stage), the LLM call, adaption, the consistency vote, and
//! individual statement executions — becomes a [`SpanRecord`] with a
//! parent/child causal edge to the span that was open when it started.
//!
//! Spans carry **two** timelines at once:
//!
//! * a *virtual* timeline on the work-unit clock ([`Clock::Virtual`]): each
//!   trace starts at cursor 0 and every `finish(work)` advances the cursor by
//!   the declared work, so span start/end offsets are a pure function of the
//!   request — byte-identical for any worker count, arrival order, or batching
//!   mode. Scheduling-dependent scopes (queue wait, batch coalescing) declare
//!   zero work, so their presence never perturbs the virtual timeline.
//! * a *wall* timeline in monotonic nanoseconds since the recorder was created
//!   (admission time), so queue wait and real stage latencies are measurable.
//!   Wall data is interleaving-dependent and therefore confined to stdout
//!   rollups and opt-in exports; it never enters report JSON.
//!
//! Completed recorders are published to a bounded, thread-safe [`SpanSink`]
//! (the span analogue of [`crate::EventSink`]): traces are keyed by
//! [`TraceId`], over-bound publication evicts the largest ids, and
//! [`SpanSink::drain`] returns traces in ascending id order — so the drained
//! stream, and the Chrome-trace JSON rendered from it by [`to_chrome_trace`],
//! are byte-identical for any completion interleaving.
//!
//! [`Clock::Virtual`]: crate::Clock::Virtual

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Identifies one request's trace. The serving layer uses the wire request id,
/// which is assigned before arrival-order shuffling — so trace identity is
/// stable across load permutations.
pub type TraceId = u64;

/// Identifies one span within its trace (dense, in start order).
pub type SpanId = u32;

/// Default bound on spans kept per trace (excess spans are counted, not kept).
pub const DEFAULT_SPANS_PER_TRACE: usize = 192;

/// Default bound on traces kept by a [`SpanSink`].
pub const DEFAULT_MAX_TRACES: usize = 1024;

/// Name of the implicit root span every recorder opens at creation.
pub const ROOT_SPAN: &str = "request";

/// Name of the admission-queue wait span (virtual work 0).
pub const QUEUE_WAIT_SPAN: &str = "queue-wait";

/// Name of the batch-coalesce span shared by coalesced requests (virtual
/// work 0).
pub const BATCH_SPAN: &str = "batch-coalesce";

/// Name of a single statement-execution span recorded by the engine.
pub const EXEC_SPAN: &str = "exec";

/// One closed (or force-closed at publish) span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dense per-trace id, in span start order.
    pub id: SpanId,
    /// Span that was open when this one started (`None` for the root).
    pub parent: Option<SpanId>,
    /// Static span name: [`ROOT_SPAN`], [`QUEUE_WAIT_SPAN`], [`BATCH_SPAN`],
    /// [`EXEC_SPAN`], or a [`Stage::name`](crate::Stage::name).
    pub name: &'static str,
    /// Virtual-cursor value when the span opened.
    pub start: u64,
    /// Virtual-cursor value when the span closed (`start + declared work` for
    /// leaves; covers all nested work for interior spans).
    pub end: u64,
    /// Wall nanoseconds since recorder creation when the span opened.
    pub wall_start_ns: u64,
    /// Wall nanoseconds since recorder creation when the span closed.
    pub wall_end_ns: u64,
}

impl SpanRecord {
    /// Virtual duration in work units.
    pub fn virt(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Wall duration in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.wall_end_ns.saturating_sub(self.wall_start_ns)
    }
}

/// Handle to an open span, returned by [`TraceRecorder::start`] and redeemed
/// by [`TraceRecorder::finish`]. Tokens are plain indices (no borrow), so a
/// span can be opened on one thread (admission) and closed on another (the
/// worker that dequeued the request).
#[derive(Debug, Clone, Copy)]
pub struct SpanToken(u32);

const DROPPED: u32 = u32::MAX;

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    /// Stack of open span ids; the top is the parent of the next span.
    open: Vec<SpanId>,
    /// Virtual work-unit cursor, advanced by every `finish`.
    cursor: u64,
    dropped: u64,
}

/// Records one request's span tree. Thread-safe; cheap to create per request.
#[derive(Debug)]
pub struct TraceRecorder {
    trace_id: TraceId,
    cap: usize,
    origin: Instant,
    state: Mutex<TraceState>,
}

impl TraceRecorder {
    /// Create a recorder with the default per-trace span cap. The root
    /// [`ROOT_SPAN`] span is opened immediately and closed at publish.
    pub fn new(trace_id: TraceId) -> Self {
        Self::with_cap(trace_id, DEFAULT_SPANS_PER_TRACE)
    }

    /// Create a recorder keeping at most `cap` spans (at least the root).
    pub fn with_cap(trace_id: TraceId, cap: usize) -> Self {
        let rec = TraceRecorder {
            trace_id,
            cap: cap.max(1),
            origin: Instant::now(),
            state: Mutex::new(TraceState::default()),
        };
        rec.start(ROOT_SPAN);
        rec
    }

    /// The trace this recorder belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Open a span as a child of the innermost open span. Over the span cap
    /// the span is counted as dropped and the returned token is inert (its
    /// `finish` still advances the virtual cursor, so sibling offsets do not
    /// depend on the cap).
    pub fn start(&self, name: &'static str) -> SpanToken {
        let now = self.elapsed_ns();
        let mut st = self.state.lock().expect("trace recorder poisoned");
        if st.spans.len() >= self.cap {
            st.dropped += 1;
            return SpanToken(DROPPED);
        }
        let id = st.spans.len() as SpanId;
        let parent = st.open.last().copied();
        let record = SpanRecord {
            id,
            parent,
            name,
            start: st.cursor,
            end: st.cursor,
            wall_start_ns: now,
            wall_end_ns: now,
        };
        st.spans.push(record);
        st.open.push(id);
        SpanToken(id)
    }

    /// Close a span, declaring `work` virtual units for the scope. Closing is
    /// defensive about ordering: the token is removed from the open stack
    /// wherever it sits, so a missed nested `finish` cannot corrupt parents.
    pub fn finish(&self, token: SpanToken, work: u64) {
        let now = self.elapsed_ns();
        let mut st = self.state.lock().expect("trace recorder poisoned");
        st.cursor = st.cursor.saturating_add(work);
        if token.0 == DROPPED {
            return;
        }
        let cursor = st.cursor;
        if let Some(span) = st.spans.get_mut(token.0 as usize) {
            span.end = cursor;
            span.wall_end_ns = now;
        }
        st.open.retain(|&id| id != token.0);
    }

    /// Record a complete leaf span in one call (start + finish with `work`).
    pub fn leaf(&self, name: &'static str, work: u64) {
        let token = self.start(name);
        self.finish(token, work);
    }

    /// Consume the recorder: force-close any still-open spans at the current
    /// cursor and return `(trace id, spans in start order, dropped count)`.
    pub fn into_spans(self) -> (TraceId, Vec<SpanRecord>, u64) {
        let now = self.elapsed_ns();
        let mut st = self.state.into_inner().expect("trace recorder poisoned");
        while let Some(id) = st.open.pop() {
            if let Some(span) = st.spans.get_mut(id as usize) {
                span.end = st.cursor;
                span.wall_end_ns = now;
            }
        }
        (self.trace_id, st.spans, st.dropped)
    }
}

/// Seeded 1-in-N trace sampling. Admission is a pure function of the request
/// id (`splitmix64(seed ^ id) % sample == 0`), so the sampled set is identical
/// for any arrival order or worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSampler {
    /// Keep one request in `sample` (0 and 1 both mean "keep all").
    pub sample: u64,
    /// Mixing seed, so different runs can sample different subsets.
    pub seed: u64,
}

impl TraceSampler {
    /// Sample every request.
    pub fn all() -> Self {
        TraceSampler { sample: 1, seed: 0 }
    }

    /// Whether the request with this id is traced.
    pub fn admits(&self, id: u64) -> bool {
        self.sample <= 1 || splitmix64(self.seed ^ id).is_multiple_of(self.sample)
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One published trace: the request's spans in start order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpans {
    /// The trace id (wire request id under serve).
    pub trace_id: TraceId,
    /// Spans in start order ([`SpanRecord::id`] order).
    pub spans: Vec<SpanRecord>,
}

#[derive(Debug, Default)]
struct SinkState {
    traces: BTreeMap<TraceId, Vec<SpanRecord>>,
    dropped_traces: u64,
    dropped_spans: u64,
}

/// Bounded, thread-safe store of published traces.
///
/// Like [`crate::EventSink`], publication is atomic per trace and eviction is
/// deterministic: when over the bound, the *largest* trace ids are discarded,
/// so the retained set is "the first `max_traces` request ids" regardless of
/// completion order.
#[derive(Debug)]
pub struct SpanSink {
    max_traces: usize,
    inner: Mutex<SinkState>,
}

impl SpanSink {
    /// Sink keeping at most `max_traces` traces.
    pub fn bounded(max_traces: usize) -> Self {
        SpanSink { max_traces: max_traces.max(1), inner: Mutex::new(SinkState::default()) }
    }

    /// Shared sink with the default bound.
    pub fn shared() -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::bounded(DEFAULT_MAX_TRACES))
    }

    /// Publish a completed recorder (consumes it; force-closes open spans).
    pub fn publish(&self, rec: TraceRecorder) {
        let (trace_id, spans, dropped) = rec.into_spans();
        let mut st = self.inner.lock().expect("span sink poisoned");
        st.dropped_spans += dropped;
        st.traces.insert(trace_id, spans);
        while st.traces.len() > self.max_traces {
            st.traces.pop_last();
            st.dropped_traces += 1;
        }
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("span sink poisoned").traces.len()
    }

    /// Whether the sink holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current `(dropped traces, dropped spans)` without draining — feeds the
    /// trace-loss counters of the Prometheus exposition. Both reset to zero
    /// when [`SpanSink::drain`] takes the accumulated state.
    pub fn loss(&self) -> (u64, u64) {
        let st = self.inner.lock().expect("span sink poisoned");
        (st.dropped_traces, st.dropped_spans)
    }

    /// Drain everything in ascending trace-id order, resetting the sink.
    pub fn drain(&self) -> DrainedTraces {
        let mut st = self.inner.lock().expect("span sink poisoned");
        let state = std::mem::take(&mut *st);
        DrainedTraces {
            traces: state
                .traces
                .into_iter()
                .map(|(trace_id, spans)| TraceSpans { trace_id, spans })
                .collect(),
            dropped_traces: state.dropped_traces,
            dropped_spans: state.dropped_spans,
        }
    }
}

/// Everything a [`SpanSink::drain`] returns: traces ascending by id plus
/// bound-overflow accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainedTraces {
    /// Traces in ascending [`TraceId`] order.
    pub traces: Vec<TraceSpans>,
    /// Traces evicted by the sink bound.
    pub dropped_traces: u64,
    /// Spans dropped by per-trace caps.
    pub dropped_spans: u64,
}

/// Render drained traces as Chrome trace-event JSON (`chrome://tracing`,
/// Perfetto). With `wall: false` (the default export) span `ts`/`dur` are
/// virtual work units — byte-identical for any worker count, arrival order,
/// or batching mode. With `wall: true` they are wall microseconds since each
/// request's admission (interleaving-dependent; opt-in only).
pub fn to_chrome_trace(drained: &DrainedTraces, wall: bool) -> String {
    let mut out = String::with_capacity(256 + drained.traces.len() * 512);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":");
    out.push_str(if wall { "\"wall\"" } else { "\"virtual\"" });
    write!(
        out,
        ",\"dropped_traces\":{},\"dropped_spans\":{}}},\"traceEvents\":[",
        drained.dropped_traces, drained.dropped_spans
    )
    .unwrap();
    let mut first = true;
    for trace in &drained.traces {
        for span in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let (ts, dur) = if wall {
                (span.wall_start_ns / 1_000, span.wall_ns() / 1_000)
            } else {
                (span.start, span.virt())
            };
            write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"purple\",\"ph\":\"X\",\"ts\":{ts},\
                 \"dur\":{dur},\"pid\":0,\"tid\":{},\"args\":{{\"span\":{},\"parent\":",
                span.name, trace.trace_id, span.id
            )
            .unwrap();
            match span.parent {
                Some(p) => write!(out, "{p}").unwrap(),
                None => out.push_str("null"),
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Aggregated latency distribution for one span path (names from root joined
/// with `/`, e.g. `request/adaption/exec`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupRow {
    /// Root-to-span name path.
    pub path: String,
    /// Spans aggregated under this path.
    pub count: u64,
    /// Virtual-duration p50/p95/p99 in work units.
    pub virt: [u64; 3],
    /// Wall-duration p50/p95/p99 in microseconds.
    pub wall_us: [u64; 3],
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Aggregate drained traces into per-path latency rows, sorted by path.
///
/// Queue wait shows up as `request/queue-wait` with a zero virtual
/// distribution (it declares no work) and a real wall distribution.
pub fn rollup(drained: &DrainedTraces) -> Vec<RollupRow> {
    let mut by_path: BTreeMap<String, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
    for trace in &drained.traces {
        for span in &trace.spans {
            // Walk parent edges to build the path; spans are in start order so
            // every parent precedes its children.
            let mut names = vec![span.name];
            let mut cursor = span.parent;
            while let Some(pid) = cursor {
                let parent = &trace.spans[pid as usize];
                names.push(parent.name);
                cursor = parent.parent;
            }
            names.reverse();
            let path = names.join("/");
            let entry = by_path.entry(path).or_default();
            entry.0.push(span.virt());
            entry.1.push(span.wall_ns() / 1_000);
        }
    }
    by_path
        .into_iter()
        .map(|(path, (mut virt, mut wall))| {
            virt.sort_unstable();
            wall.sort_unstable();
            RollupRow {
                path,
                count: virt.len() as u64,
                virt: [0.50, 0.95, 0.99].map(|q| percentile(&virt, q)),
                wall_us: [0.50, 0.95, 0.99].map(|q| percentile(&wall, q)),
            }
        })
        .collect()
}

/// Render rollup rows as a flamegraph-style markdown table (indentation by
/// path depth). Wall columns are stdout-only diagnostics; the virtual columns
/// are deterministic.
pub fn render_rollup(rows: &[RollupRow]) -> String {
    let mut out = String::from(
        "| span path | count | p50(work) | p95(work) | p99(work) | p50(ms) | p95(ms) | p99(ms) |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    for row in rows {
        let depth = row.path.matches('/').count();
        let leaf = row.path.rsplit('/').next().unwrap_or(&row.path);
        let ms = row.wall_us.map(|us| us as f64 / 1_000.0);
        writeln!(
            out,
            "| {}{} | {} | {} | {} | {} | {:.3} | {:.3} | {:.3} |",
            "&nbsp;&nbsp;".repeat(depth),
            leaf,
            row.count,
            row.virt[0],
            row.virt[1],
            row.virt[2],
            ms[0],
            ms[1],
            ms[2],
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_advance_the_virtual_cursor() {
        let rec = TraceRecorder::new(7);
        let queue = rec.start(QUEUE_WAIT_SPAN);
        rec.finish(queue, 0);
        let stage = rec.start("schema-pruning");
        rec.leaf(EXEC_SPAN, 5);
        rec.finish(stage, 10);
        let (id, spans, dropped) = rec.into_spans();
        assert_eq!(id, 7);
        assert_eq!(dropped, 0);
        let names: Vec<_> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, [ROOT_SPAN, QUEUE_WAIT_SPAN, "schema-pruning", EXEC_SPAN]);
        // Root opened first, parent of queue-wait and the stage.
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[3].parent, Some(2), "exec nests under the open stage");
        // Virtual timeline: queue-wait is zero-width, exec spans 0..5, the
        // stage 0..15, and the root is force-closed at the final cursor.
        assert_eq!((spans[1].start, spans[1].end), (0, 0));
        assert_eq!((spans[3].start, spans[3].end), (0, 5));
        assert_eq!((spans[2].start, spans[2].end), (0, 15));
        assert_eq!((spans[0].start, spans[0].end), (0, 15));
    }

    #[test]
    fn span_cap_drops_but_keeps_the_cursor_exact() {
        let rec = TraceRecorder::with_cap(1, 2); // root + 1
        rec.leaf("kept", 3);
        rec.leaf("dropped", 4);
        let (_, spans, dropped) = rec.into_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 1);
        assert_eq!(spans[0].end, 7, "dropped span work still advances the cursor");
    }

    #[test]
    fn sink_drains_ascending_and_evicts_largest_ids() {
        let sink = SpanSink::bounded(2);
        for id in [9u64, 3, 7] {
            sink.publish(TraceRecorder::new(id));
        }
        let drained = sink.drain();
        let ids: Vec<_> = drained.traces.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, [3, 7], "largest id evicted, ascending drain");
        assert_eq!(drained.dropped_traces, 1);
        assert!(sink.is_empty(), "drain resets");
    }

    #[test]
    fn sampler_is_arrival_order_invariant_and_covers_all_when_one() {
        let all = TraceSampler::all();
        assert!((0..100).all(|id| all.admits(id)));
        let one_in_4 = TraceSampler { sample: 4, seed: 42 };
        let kept: Vec<u64> = (0..1000).filter(|&id| one_in_4.admits(id)).collect();
        assert!(!kept.is_empty() && kept.len() < 1000);
        // Pure function of id: any evaluation order selects the same set.
        let rev: Vec<u64> = (0..1000).rev().filter(|&id| one_in_4.admits(id)).collect();
        assert_eq!(kept, rev.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn chrome_export_is_valid_shape_and_virtual_by_default() {
        let sink = SpanSink::bounded(8);
        let rec = TraceRecorder::new(5);
        rec.leaf("llm-call", 100);
        sink.publish(rec);
        let json = to_chrome_trace(&sink.drain(), false);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"clock\":\"virtual\""));
        assert!(json.contains("\"name\":\"llm-call\""));
        assert!(json.contains("\"tid\":5"));
        assert!(json.contains("\"dur\":100"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn rollup_builds_paths_and_percentiles() {
        let sink = SpanSink::bounded(8);
        for id in 0..3u64 {
            let rec = TraceRecorder::new(id);
            let stage = rec.start("adaption");
            rec.leaf(EXEC_SPAN, id + 1);
            rec.finish(stage, 0);
            sink.publish(rec);
        }
        let rows = rollup(&sink.drain());
        let paths: Vec<_> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["request", "request/adaption", "request/adaption/exec"]);
        let exec = &rows[2];
        assert_eq!(exec.count, 3);
        assert_eq!(exec.virt[0], 2, "p50 of 1,2,3");
        assert_eq!(exec.virt[2], 3);
        let rendered = render_rollup(&rows);
        assert!(rendered.contains("| request |"));
        assert!(rendered.contains("&nbsp;&nbsp;&nbsp;&nbsp;exec"));
    }
}
