//! Prometheus text-exposition rendering for the live telemetry verb
//! (`{"cmd":"metrics"}` on the serving protocol, DESIGN.md §14).
//!
//! The output is the standard `text/plain; version=0.0.4` format: `# TYPE`
//! headers, cumulative `_bucket{le=...}` histogram series, and one sample per
//! line. Everything is rendered in fixed enum order ([`Stage::ALL`],
//! [`Counter::ALL`], ...), so for a given metrics snapshot the exposition is
//! byte-stable.

use crate::{CacheStats, Clock, Counter, ExecOpStats, Fixer, Gauge, Histogram, Stage};
use crate::{StageCacheStats, StageMetrics, NUM_BUCKETS};
use std::fmt::Write as _;

fn histogram_lines(out: &mut String, metric: &str, label: &str, value: &str, h: &Histogram) {
    let mut cumulative = 0u64;
    for (i, &bucket) in h.buckets.iter().enumerate() {
        cumulative += bucket;
        if i == NUM_BUCKETS - 1 {
            writeln!(out, "{metric}_bucket{{{label}=\"{value}\",le=\"+Inf\"}} {cumulative}")
                .unwrap();
        } else {
            writeln!(
                out,
                "{metric}_bucket{{{label}=\"{value}\",le=\"{}\"}} {cumulative}",
                Histogram::bound(i)
            )
            .unwrap();
        }
    }
    writeln!(out, "{metric}_sum{{{label}=\"{value}\"}} {}", h.sum).unwrap();
    writeln!(out, "{metric}_count{{{label}=\"{value}\"}} {}", h.count).unwrap();
}

fn cache_stage_lines(out: &mut String, stage: &str, s: &StageCacheStats) {
    writeln!(out, "purple_cache_hits_total{{cache=\"{stage}\"}} {}", s.hits).unwrap();
    writeln!(out, "purple_cache_misses_total{{cache=\"{stage}\"}} {}", s.misses).unwrap();
    writeln!(out, "purple_cache_evictions_total{{cache=\"{stage}\"}} {}", s.evictions).unwrap();
    writeln!(out, "purple_cache_entries{{cache=\"{stage}\"}} {}", s.entries).unwrap();
}

/// Observability-pipeline loss accounting: what the bounded trace/event sinks
/// discarded under pressure ([`crate::SpanSink::loss`],
/// [`crate::EventSink::loss`]). Rendered as counters so a scrape can tell
/// whether the diagnostics it sees are complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkLoss {
    /// Whole traces evicted by the span sink's bound.
    pub dropped_traces: u64,
    /// Spans discarded by per-trace caps.
    pub dropped_spans: u64,
    /// Whole example batches evicted by the event sink's bound.
    pub dropped_event_batches: u64,
    /// Events discarded by per-example caps.
    pub dropped_events: u64,
}

impl SinkLoss {
    /// `(name, value)` pairs in exposition order; the name is the full metric
    /// name minus the `purple_` prefix and `_total` suffix.
    pub fn series(&self) -> [(&'static str, u64); 4] {
        [
            ("dropped_traces", self.dropped_traces),
            ("dropped_spans", self.dropped_spans),
            ("dropped_event_batches", self.dropped_event_batches),
            ("dropped_events", self.dropped_events),
        ]
    }
}

/// Render a [`StageMetrics`] snapshot — optionally with execution-session
/// cache stats, vectorized-operator stats, and trace/event sink loss — as
/// Prometheus text exposition.
pub fn render_prometheus(
    metrics: &StageMetrics,
    cache: Option<&CacheStats>,
    ops: Option<&ExecOpStats>,
    loss: Option<&SinkLoss>,
) -> String {
    let mut out = String::with_capacity(4096);
    let unit = match metrics.clock {
        Clock::Virtual => "work_units",
        Clock::Wall => "nanoseconds",
    };
    writeln!(out, "# HELP purple_stage_calls_total Pipeline stage invocations.").unwrap();
    writeln!(out, "# TYPE purple_stage_calls_total counter").unwrap();
    for s in Stage::ALL {
        let calls = metrics.stage(s).calls;
        writeln!(out, "purple_stage_calls_total{{stage=\"{}\"}} {calls}", s.name()).unwrap();
    }
    writeln!(out, "# HELP purple_stage_latency Per-stage span durations ({unit}).").unwrap();
    writeln!(out, "# TYPE purple_stage_latency histogram").unwrap();
    for s in Stage::ALL {
        let latency = &metrics.stage(s).latency;
        histogram_lines(&mut out, "purple_stage_latency", "stage", s.name(), latency);
    }
    for c in Counter::ALL {
        let name = c.name();
        writeln!(out, "# TYPE purple_{name}_total counter").unwrap();
        writeln!(out, "purple_{name}_total {}", metrics.counter(c)).unwrap();
    }
    for g in Gauge::ALL {
        let name = g.name();
        writeln!(out, "# TYPE purple_{name} gauge").unwrap();
        writeln!(out, "purple_{name} {}", metrics.gauge(g).unwrap_or(0)).unwrap();
    }
    writeln!(out, "# TYPE purple_fixer_hits_total counter").unwrap();
    writeln!(out, "# TYPE purple_fixer_successes_total counter").unwrap();
    for f in Fixer::ALL {
        let stats = metrics.fixer(f);
        writeln!(out, "purple_fixer_hits_total{{fixer=\"{}\"}} {}", f.name(), stats.hits).unwrap();
        let successes = stats.successes;
        writeln!(out, "purple_fixer_successes_total{{fixer=\"{}\"}} {successes}", f.name())
            .unwrap();
    }
    if let Some(cache) = cache {
        writeln!(out, "# HELP purple_cache_hits_total Execution-session cache hits.").unwrap();
        writeln!(out, "# TYPE purple_cache_hits_total counter").unwrap();
        writeln!(out, "# TYPE purple_cache_misses_total counter").unwrap();
        writeln!(out, "# TYPE purple_cache_evictions_total counter").unwrap();
        writeln!(out, "# TYPE purple_cache_entries gauge").unwrap();
        cache_stage_lines(&mut out, "parse", &cache.parse);
        cache_stage_lines(&mut out, "plan", &cache.plan);
        cache_stage_lines(&mut out, "result", &cache.result);
        cache_stage_lines(&mut out, "columns", &cache.columns);
    }
    if let Some(ops) = ops {
        for (name, value) in [
            ("batches", ops.batches),
            ("rows_scanned", ops.rows_scanned),
            ("hash_probes", ops.hash_probes),
            ("hash_probe_hits", ops.hash_probe_hits),
            ("nested_loop_fallbacks", ops.nested_loop_fallbacks),
            ("hash_agg_groups", ops.hash_agg_groups),
            ("column_builds", ops.column_builds),
        ] {
            writeln!(out, "# TYPE purple_exec_{name}_total counter").unwrap();
            writeln!(out, "purple_exec_{name}_total {value}").unwrap();
        }
    }
    if let Some(loss) = loss {
        writeln!(out, "# HELP purple_dropped_traces_total Observability data lost to sink bounds.")
            .unwrap();
        for (name, value) in loss.series() {
            writeln!(out, "# TYPE purple_{name}_total counter").unwrap();
            writeln!(out, "purple_{name}_total {value}").unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_covers_every_metric_family() {
        let mut m = StageMetrics::default();
        m.observe(Stage::LlmCall, 120);
        m.count(Counter::LlmCalls, 1);
        m.set_gauge(Gauge::QueueDepth, 3);
        m.record_fix(Fixer::MissingTable, true);
        let cache = CacheStats::default();
        let ops = ExecOpStats { batches: 9, ..ExecOpStats::default() };
        let loss = SinkLoss { dropped_traces: 2, dropped_spans: 5, ..SinkLoss::default() };
        let text = render_prometheus(&m, Some(&cache), Some(&ops), Some(&loss));
        assert!(text.contains("purple_stage_calls_total{stage=\"llm-call\"} 1"));
        assert!(text.contains("purple_stage_latency_bucket{stage=\"llm-call\",le=\"+Inf\"} 1"));
        assert!(text.contains("purple_stage_latency_sum{stage=\"llm-call\"} 120"));
        assert!(text.contains("purple_llm_calls_total 1"));
        assert!(text.contains("purple_queue_depth 3"));
        assert!(text.contains("purple_fixer_hits_total{fixer=\"missing-table\"} 1"));
        assert!(text.contains("purple_cache_entries{cache=\"parse\"} 0"));
        assert!(text.contains("purple_exec_batches_total 9"));
        assert!(text.contains("purple_dropped_traces_total 2"));
        assert!(text.contains("purple_dropped_spans_total 5"));
        assert!(text.contains("purple_dropped_events_total 0"));
        // Every enum variant has a sample line.
        for s in Stage::ALL {
            assert!(text.contains(&format!("{{stage=\"{}\"}}", s.name())));
        }
        for c in Counter::ALL {
            assert!(text.contains(&format!("purple_{}_total", c.name())));
        }
        for g in Gauge::ALL {
            assert!(text.contains(&format!("purple_{}", g.name())));
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut m = StageMetrics::default();
        m.observe(Stage::Adaption, 1); // bucket le=1
        m.observe(Stage::Adaption, 3); // bucket le=4
        let text = render_prometheus(&m, None, None, None);
        assert!(text.contains("purple_stage_latency_bucket{stage=\"adaption\",le=\"1\"} 1"));
        assert!(text.contains("purple_stage_latency_bucket{stage=\"adaption\",le=\"4\"} 2"));
        assert!(text.contains("purple_stage_latency_bucket{stage=\"adaption\",le=\"+Inf\"} 2"));
        assert!(text.contains("purple_stage_latency_count{stage=\"adaption\"} 2"));
    }
}
