//! # purple-obs
//!
//! The pipeline observability layer: a hand-rolled, `Sync`, allocation-light
//! metrics registry (counters, gauges, and fixed-bucket latency histograms) plus
//! a [`Span`] guard for timing scopes. Every stage of the PURPLE pipeline —
//! schema pruning, skeleton prediction, demonstration selection, prompt
//! assembly, the LLM call, the six adaption fixers, and the consistency vote —
//! records into one of these registries, and the per-run [`StageMetrics`]
//! snapshots merge deterministically across evaluation workers (DESIGN.md §8).
//!
//! Two clocks are supported: [`Clock::Virtual`] (the default) measures spans in
//! deterministic *work units* declared by the instrumented code, so aggregated
//! metrics are byte-identical for any thread count; [`Clock::Wall`] measures
//! real monotonic nanoseconds for profiling, at the cost of byte-stability.
//!
//! Beyond aggregate metrics, the [`events`] module provides a structured,
//! bounded per-example trace-event log ([`Event`] / [`EventRecorder`] /
//! [`EventSink`]): stages emit what they saw and decided for one example, and
//! the sink drains in ascending example order so the JSONL stream is
//! byte-identical for any worker count (DESIGN.md §9).
//!
//! The [`trace`] module adds request-scoped hierarchical span trees on the
//! same two-clock discipline ([`TraceRecorder`] / [`SpanSink`], DESIGN.md
//! §14), and [`prom`] renders a snapshot as Prometheus text exposition for
//! the serving layer's live `{"cmd":"metrics"}` telemetry verb.
//!
//! The [`window`] and [`slo`] modules layer *time-resolved* telemetry on top
//! (DESIGN.md §16): ring-buffer sliding windows giving rolling rates,
//! high-watermarks, and p50/p95/p99, plus declarative latency/admission SLOs
//! reduced to a Healthy/Degraded/Breached verdict. They power the serving
//! layer's `{"cmd":"health"}` verb and the soak timeline.

#![warn(missing_docs)]

mod cache;
pub mod events;
mod ops;
pub mod prom;
mod registry;
pub mod slo;
mod snapshot;
pub mod trace;
pub mod window;

pub use cache::{CacheCounters, CacheStats, StageCacheCounters, StageCacheStats};
pub use events::{
    to_jsonl, DrainedEvents, Event, EventRecorder, EventSink, EventValue,
    DEFAULT_EVENTS_PER_EXAMPLE, DEFAULT_MAX_EXAMPLES,
};
pub use ops::{ExecOpCounters, ExecOpStats};
pub use prom::{render_prometheus, SinkLoss};
pub use registry::{Clock, MetricsRegistry, Span};
pub use slo::{SloSpec, SloStatus, SloTracker, SloVerdict};
pub use snapshot::{
    CounterBlock, FixerStats, GaugeSlot, Histogram, StageMetrics, StageStats, NUM_BUCKETS,
};
pub use trace::{
    DrainedTraces, SpanId, SpanRecord, SpanSink, SpanToken, TraceId, TraceRecorder, TraceSampler,
    TraceSpans,
};
pub use window::{SlidingWindow, WindowStats};

/// A pipeline stage with its own call counter and latency histogram.
///
/// The seven stages cover the four PURPLE modules of the paper's Fig. 3 plus
/// the prompt-assembly and vote sub-steps the ablations (Table VIII, §VII)
/// reason about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Stage {
    /// Schema Pruning (§IV-A): classifier thresholding + Steiner connectivity.
    SchemaPruning,
    /// Skeleton Prediction (§IV-B): the trained top-k predictor.
    SkeletonPrediction,
    /// Demonstration Selection (§IV-C): Algorithm 1 over the automaton set.
    DemoSelection,
    /// Prompt assembly and token-budget fitting (Fig. 11's `len`).
    PromptAssembly,
    /// The LLM generation call (tokens in/out, context overflows).
    LlmCall,
    /// Database Adaption (§IV-D1): the repair loop over all samples.
    Adaption,
    /// Execution-consistency vote (§IV-D2).
    ConsistencyVote,
    /// DML application through either engine (INSERT/UPDATE/DELETE/upsert).
    WriteExec,
}

impl Stage {
    /// Number of stages (array dimension of [`StageMetrics::stages`]).
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order. This order is the serialization order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::SchemaPruning,
        Stage::SkeletonPrediction,
        Stage::DemoSelection,
        Stage::PromptAssembly,
        Stage::LlmCall,
        Stage::Adaption,
        Stage::ConsistencyVote,
        Stage::WriteExec,
    ];

    /// The stages rendered into deterministic report JSON: the original seven
    /// pipeline stages. [`Stage::WriteExec`] stays out so every SELECT-only
    /// `EvalReport` remains byte-identical to reports produced before the
    /// write path existed.
    pub const REPORT: [Stage; 7] = [
        Stage::SchemaPruning,
        Stage::SkeletonPrediction,
        Stage::DemoSelection,
        Stage::PromptAssembly,
        Stage::LlmCall,
        Stage::Adaption,
        Stage::ConsistencyVote,
    ];

    /// Stable kebab-case name used in JSON and report tables.
    pub fn name(self) -> &'static str {
        match self {
            Stage::SchemaPruning => "schema-pruning",
            Stage::SkeletonPrediction => "skeleton-prediction",
            Stage::DemoSelection => "demo-selection",
            Stage::PromptAssembly => "prompt-assembly",
            Stage::LlmCall => "llm-call",
            Stage::Adaption => "adaption",
            Stage::ConsistencyVote => "consistency-vote",
            Stage::WriteExec => "write-exec",
        }
    }

    /// Parse a [`Stage::name`] back.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Array index (position within [`Stage::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One of the six Database-Adaption fixers of Table 2, each with hit/success
/// counters (a *hit* is one application of the fixer inside the repair loop; a
/// *success* is a hit whose sample ended up executable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Fixer {
    /// Column attached to the wrong alias (Table 2 row 1).
    TableColumnMismatch,
    /// Unqualified column resolvable to several tables (row 2).
    ColumnAmbiguity,
    /// Column whose owner table is absent from FROM (row 3).
    MissingTable,
    /// Misspelled / nonexistent table or column (row 4).
    SchemaHallucination,
    /// Unsupported function spelling (row 5).
    FunctionHallucination,
    /// Multi-argument aggregate (row 6).
    AggregationHallucination,
}

impl Fixer {
    /// Number of fixers (array dimension of [`StageMetrics::fixers`]).
    pub const COUNT: usize = 6;

    /// Every fixer, in Table-2 order. This order is the serialization order.
    pub const ALL: [Fixer; Fixer::COUNT] = [
        Fixer::TableColumnMismatch,
        Fixer::ColumnAmbiguity,
        Fixer::MissingTable,
        Fixer::SchemaHallucination,
        Fixer::FunctionHallucination,
        Fixer::AggregationHallucination,
    ];

    /// Stable category label, identical to `engine::ExecError::category`.
    pub fn name(self) -> &'static str {
        match self {
            Fixer::TableColumnMismatch => "table-column-mismatch",
            Fixer::ColumnAmbiguity => "column-ambiguity",
            Fixer::MissingTable => "missing-table",
            Fixer::SchemaHallucination => "schema-hallucination",
            Fixer::FunctionHallucination => "function-hallucination",
            Fixer::AggregationHallucination => "aggregation-hallucination",
        }
    }

    /// Map an `engine::ExecError::category` label to its fixer.
    pub fn from_category(category: &str) -> Option<Fixer> {
        Fixer::from_name(category)
    }

    /// Parse a [`Fixer::name`] back (same label space as `from_category`; this
    /// spelling completes the `from_name` ↔ `name` convention every other
    /// metric enum follows).
    pub fn from_name(name: &str) -> Option<Fixer> {
        Fixer::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Array index (position within [`Fixer::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A monotonically increasing event/total counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Counter {
    /// LLM generation calls issued.
    LlmCalls,
    /// Billed prompt tokens across all LLM calls.
    PromptTokens,
    /// Billed output tokens across all LLM calls.
    OutputTokens,
    /// LLM calls whose prompt exceeded the context limit and was truncated.
    ContextOverflows,
    /// Consistency samples generated.
    Samples,
    /// Samples that needed repair and ended up executable.
    RepairedSamples,
    /// Samples that needed repair and stayed broken.
    UnrepairedSamples,
    /// Rows appended by INSERT statements (both engines).
    RowsInserted,
    /// Rows rewritten by UPDATE or `ON CONFLICT DO UPDATE`.
    RowsUpdated,
    /// Rows removed by DELETE statements.
    RowsDeleted,
    /// INSERT tuples that hit an existing primary key under `ON CONFLICT`.
    ConflictHits,
    /// Serve requests rejected at admission because the queue was full
    /// (open-loop `try_submit` under overload; blocking `submit` never sheds).
    RequestsShed,
}

impl Counter {
    /// Number of counters (array dimension of [`CounterBlock`]).
    pub const COUNT: usize = 12;

    /// Every counter, in serialization order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::LlmCalls,
        Counter::PromptTokens,
        Counter::OutputTokens,
        Counter::ContextOverflows,
        Counter::Samples,
        Counter::RepairedSamples,
        Counter::UnrepairedSamples,
        Counter::RowsInserted,
        Counter::RowsUpdated,
        Counter::RowsDeleted,
        Counter::ConflictHits,
        Counter::RequestsShed,
    ];

    /// The counters rendered into deterministic report JSON: the original
    /// seven. The write-execution counters stay out so every SELECT-only
    /// `EvalReport` remains byte-identical to reports produced before the
    /// write path existed.
    pub const REPORT: [Counter; 7] = [
        Counter::LlmCalls,
        Counter::PromptTokens,
        Counter::OutputTokens,
        Counter::ContextOverflows,
        Counter::Samples,
        Counter::RepairedSamples,
        Counter::UnrepairedSamples,
    ];

    /// Stable snake_case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::LlmCalls => "llm_calls",
            Counter::PromptTokens => "prompt_tokens",
            Counter::OutputTokens => "output_tokens",
            Counter::ContextOverflows => "context_overflows",
            Counter::Samples => "samples",
            Counter::RepairedSamples => "repaired_samples",
            Counter::UnrepairedSamples => "unrepaired_samples",
            Counter::RowsInserted => "rows_inserted",
            Counter::RowsUpdated => "rows_updated",
            Counter::RowsDeleted => "rows_deleted",
            Counter::ConflictHits => "conflict_hits",
            Counter::RequestsShed => "requests_shed",
        }
    }

    /// Parse a [`Counter::name`] back.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Array index (position within [`Counter::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A last-value gauge. Merging folds in example order, so the aggregated value
/// is the final example's — deterministic for any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Gauge {
    /// Demonstrations that survived budget fitting in the latest prompt.
    DemosInPrompt,
    /// Demonstration-pool size of the translator.
    PoolSize,
    /// Requests waiting in the serve admission queue (set by `purple-serve`).
    QueueDepth,
    /// Requests currently being translated by serve workers.
    InFlight,
    /// Largest queue depth ever observed by this registry (monotone).
    QueueDepthHwm,
    /// Largest in-flight count ever observed by this registry (monotone).
    InFlightHwm,
}

impl Gauge {
    /// Number of gauges (array dimension of [`StageMetrics::gauges`]).
    pub const COUNT: usize = 6;

    /// Every gauge, in serialization order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::DemosInPrompt,
        Gauge::PoolSize,
        Gauge::QueueDepth,
        Gauge::InFlight,
        Gauge::QueueDepthHwm,
        Gauge::InFlightHwm,
    ];

    /// The gauges rendered into deterministic report JSON: the original four.
    /// The serving high-watermarks stay out so every `EvalReport` remains
    /// byte-identical to reports produced before windowed telemetry existed.
    pub const REPORT: [Gauge; 4] =
        [Gauge::DemosInPrompt, Gauge::PoolSize, Gauge::QueueDepth, Gauge::InFlight];

    /// Stable snake_case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::DemosInPrompt => "demos_in_prompt",
            Gauge::PoolSize => "pool_size",
            Gauge::QueueDepth => "queue_depth",
            Gauge::InFlight => "in_flight",
            Gauge::QueueDepthHwm => "queue_depth_hwm",
            Gauge::InFlightHwm => "in_flight_hwm",
        }
    }

    /// Parse a [`Gauge::name`] back.
    pub fn from_name(name: &str) -> Option<Gauge> {
        Gauge::ALL.into_iter().find(|g| g.name() == name)
    }

    /// Array index (position within [`Gauge::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}
