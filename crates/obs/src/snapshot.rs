//! Plain-data metrics snapshots: what a [`crate::MetricsRegistry`] accumulates,
//! what one pipeline run returns, and what the evaluation harness folds — in
//! example order — into a split-level aggregate.

use crate::{Clock, Counter, Fixer, Gauge, Stage};
use serde::{Deserialize, Serialize};

/// Number of histogram buckets. Bucket `i < NUM_BUCKETS - 1` counts values
/// `v <= 4^i`; the last bucket catches everything larger (~2.7e11, i.e. ≈275 s
/// when values are wall nanoseconds).
pub const NUM_BUCKETS: usize = 20;

/// A fixed-bucket histogram with power-of-four bounds plus exact sum/count/max.
///
/// The bounds cover both wall nanoseconds (1 ns .. ~275 s) and virtual work
/// units (single-digit items .. millions of tokens) without configuration, and
/// the fixed layout makes merging a branch-free element-wise add.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Observation count per bucket.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total observations (= sum of `buckets`).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Upper bound (inclusive) of bucket `i`; the last bucket is unbounded.
    pub fn bound(i: usize) -> u64 {
        debug_assert!(i < NUM_BUCKETS);
        if i >= NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            4u64.saturating_pow(i as u32)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx =
            (0..NUM_BUCKETS - 1).find(|&i| value <= Self::bound(i)).unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Element-wise merge (bucket/count/sum add, max of max) — associative and
    /// commutative, so any fold order yields the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Per-stage call count and latency histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageStats {
    /// Times the stage ran.
    pub calls: u64,
    /// Span durations: wall nanoseconds under [`Clock::Wall`], work units under
    /// [`Clock::Virtual`].
    pub latency: Histogram,
}

impl StageStats {
    fn merge(&mut self, other: &StageStats) {
        self.calls += other.calls;
        self.latency.merge(&other.latency);
    }
}

/// Hit/success counters for one adaption fixer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixerStats {
    /// Applications of the fixer inside the repair loop.
    pub hits: u64,
    /// Hits belonging to a sample that ended up executable.
    pub successes: u64,
}

/// The fixed counter block (see [`Counter`] for the slot meanings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterBlock(pub [u64; Counter::COUNT]);

impl CounterBlock {
    /// Read one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.0[c.index()]
    }
}

/// A gauge slot: unset until first written, then the last written value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSlot {
    /// Whether the gauge was ever set.
    pub set: bool,
    /// Last written value (0 while unset).
    pub value: u64,
}

/// A complete metrics snapshot: everything one pipeline run (or one aggregated
/// split evaluation) observed.
///
/// Snapshots merge with [`StageMetrics::merge`]; the evaluation harness folds
/// per-example snapshots **in example order** (exactly like scores), so the
/// aggregate is identical for any worker count. Under [`Clock::Virtual`] the
/// aggregate is further byte-identical across runs; under [`Clock::Wall`] the
/// latency histograms carry real (run-dependent) timings while every counter,
/// gauge, and fixer stat stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Which clock produced the latency values.
    pub clock: Clock,
    /// Per-stage stats, indexed by [`Stage::index`].
    pub stages: [StageStats; Stage::COUNT],
    /// Per-fixer hit/success counters, indexed by [`Fixer::index`].
    pub fixers: [FixerStats; Fixer::COUNT],
    /// Event/total counters.
    pub counters: CounterBlock,
    /// Last-value gauges, indexed by [`Gauge::index`].
    pub gauges: [GaugeSlot; Gauge::COUNT],
}

impl Default for StageMetrics {
    fn default() -> Self {
        StageMetrics {
            clock: Clock::Virtual,
            stages: [StageStats::default(); Stage::COUNT],
            fixers: [FixerStats::default(); Fixer::COUNT],
            counters: CounterBlock::default(),
            gauges: [GaugeSlot::default(); Gauge::COUNT],
        }
    }
}

impl StageMetrics {
    /// An empty snapshot for a given clock.
    pub fn empty(clock: Clock) -> Self {
        StageMetrics { clock, ..StageMetrics::default() }
    }

    /// Stats for one stage.
    pub fn stage(&self, s: Stage) -> &StageStats {
        &self.stages[s.index()]
    }

    /// Stats for one fixer.
    pub fn fixer(&self, f: Fixer) -> &FixerStats {
        &self.fixers[f.index()]
    }

    /// Read one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// Read one gauge (`None` while unset).
    pub fn gauge(&self, g: Gauge) -> Option<u64> {
        let slot = self.gauges[g.index()];
        slot.set.then_some(slot.value)
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.calls == 0 && s.latency.count == 0)
            && self.counters.0.iter().all(|&c| c == 0)
            && self.fixers.iter().all(|f| f.hits == 0)
            && self.gauges.iter().all(|g| !g.set)
    }

    /// Record one latency observation for a stage (and count the call).
    pub fn observe(&mut self, stage: Stage, value: u64) {
        let s = &mut self.stages[stage.index()];
        s.calls += 1;
        s.latency.observe(value);
    }

    /// Add to a counter.
    pub fn count(&mut self, c: Counter, by: u64) {
        self.counters.0[c.index()] += by;
    }

    /// Set a gauge.
    pub fn set_gauge(&mut self, g: Gauge, value: u64) {
        self.gauges[g.index()] = GaugeSlot { set: true, value };
    }

    /// Raise a gauge to at least `value` (high-watermark semantics: the slot
    /// only ever moves up).
    pub fn raise_gauge(&mut self, g: Gauge, value: u64) {
        let slot = &mut self.gauges[g.index()];
        slot.value = if slot.set { slot.value.max(value) } else { value };
        slot.set = true;
    }

    /// Total virtual work recorded across the [`Stage::REPORT`] stages — the
    /// per-request cost under [`Clock::Virtual`]. Deterministic for a given
    /// example regardless of caching or scheduling *of other requests*, which
    /// is what the soak timeline's offered-load cost table relies on.
    pub fn report_work(&self) -> u64 {
        Stage::REPORT.iter().map(|s| self.stage(*s).latency.sum).fold(0, u64::saturating_add)
    }

    /// Record one fixer application.
    pub fn record_fix(&mut self, f: Fixer, success: bool) {
        let stats = &mut self.fixers[f.index()];
        stats.hits += 1;
        stats.successes += u64::from(success);
    }

    /// Fold another snapshot into this one. Counters, fixer stats, and
    /// histograms add; gauges take `other`'s value when set (in-example-order
    /// folding makes that "the last example's value"); the clock label follows
    /// the most recent non-empty contribution.
    pub fn merge(&mut self, other: &StageMetrics) {
        if !other.is_empty() {
            self.clock = other.clock;
        }
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
        for (a, b) in self.fixers.iter_mut().zip(&other.fixers) {
            a.hits += b.hits;
            a.successes += b.successes;
        }
        for (a, b) in self.counters.0.iter_mut().zip(&other.counters.0) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            if b.set {
                *a = *b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_by_power_of_four() {
        let mut h = Histogram::default();
        h.observe(1); // bucket 0 (<= 1)
        h.observe(4); // bucket 1 (<= 4)
        h.observe(5); // bucket 2 (<= 16)
        h.observe(u64::MAX); // overflow bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn merge_is_order_independent_for_counts_and_histograms() {
        let mut a = StageMetrics::default();
        a.observe(Stage::LlmCall, 100);
        a.count(Counter::PromptTokens, 10);
        a.record_fix(Fixer::MissingTable, true);
        let mut b = StageMetrics::default();
        b.observe(Stage::LlmCall, 7);
        b.count(Counter::PromptTokens, 3);

        let mut ab = StageMetrics::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = StageMetrics::default();
        ba.merge(&b);
        ba.merge(&a);
        // Gauges are unset here, so even reversed order agrees.
        assert_eq!(ab, ba);
        assert_eq!(ab.counter(Counter::PromptTokens), 13);
        assert_eq!(ab.stage(Stage::LlmCall).calls, 2);
        assert_eq!(ab.fixer(Fixer::MissingTable).hits, 1);
    }

    #[test]
    fn gauges_take_the_last_set_value() {
        let mut first = StageMetrics::default();
        first.set_gauge(Gauge::DemosInPrompt, 9);
        let second = StageMetrics::default(); // never set
        let mut agg = StageMetrics::default();
        agg.merge(&first);
        agg.merge(&second);
        assert_eq!(agg.gauge(Gauge::DemosInPrompt), Some(9), "unset rhs must not clear");
        let mut third = StageMetrics::default();
        third.set_gauge(Gauge::DemosInPrompt, 4);
        agg.merge(&third);
        assert_eq!(agg.gauge(Gauge::DemosInPrompt), Some(4));
        assert_eq!(agg.gauge(Gauge::PoolSize), None);
    }

    /// Exhaustive `from_name` ↔ `name` ↔ `index` contract over every metric
    /// enum: each variant round-trips, `ALL` has exactly `COUNT` distinct
    /// entries whose positions match `index()`, names are unique, and unknown
    /// names parse to `None`.
    #[test]
    fn name_round_trips_exhaustively() {
        fn check<T: Copy + PartialEq + std::fmt::Debug>(
            all: &[T],
            count: usize,
            name: impl Fn(T) -> &'static str,
            index: impl Fn(T) -> usize,
            from_name: impl Fn(&str) -> Option<T>,
        ) {
            assert_eq!(all.len(), count, "ALL length disagrees with COUNT");
            let mut seen = std::collections::BTreeSet::new();
            for (pos, &v) in all.iter().enumerate() {
                assert_eq!(index(v), pos, "index() disagrees with ALL position for {v:?}");
                assert!(seen.insert(name(v)), "duplicate name `{}`", name(v));
                assert_eq!(from_name(name(v)), Some(v), "round trip for {v:?}");
            }
            assert_eq!(from_name("no-such-metric"), None);
            assert_eq!(from_name(""), None);
        }
        check(&Stage::ALL, Stage::COUNT, Stage::name, Stage::index, Stage::from_name);
        check(&Fixer::ALL, Fixer::COUNT, Fixer::name, Fixer::index, Fixer::from_name);
        check(&Counter::ALL, Counter::COUNT, Counter::name, Counter::index, Counter::from_name);
        check(&Gauge::ALL, Gauge::COUNT, Gauge::name, Gauge::index, Gauge::from_name);
        // The REPORT subsets (what deterministic report JSON renders) must be
        // exactly the pre-write-path prefix of ALL: the write-execution
        // variants are additive and stay out of the report surface.
        assert_eq!(&Stage::ALL[..Stage::REPORT.len()], &Stage::REPORT[..]);
        assert!(!Stage::REPORT.contains(&Stage::WriteExec));
        assert_eq!(&Counter::ALL[..Counter::REPORT.len()], &Counter::REPORT[..]);
        for c in [
            Counter::RowsInserted,
            Counter::RowsUpdated,
            Counter::RowsDeleted,
            Counter::ConflictHits,
            Counter::RequestsShed,
        ] {
            assert!(!Counter::REPORT.contains(&c), "{c:?} must stay out of report JSON");
        }
        assert_eq!(&Gauge::ALL[..Gauge::REPORT.len()], &Gauge::REPORT[..]);
        for g in [Gauge::QueueDepthHwm, Gauge::InFlightHwm] {
            assert!(!Gauge::REPORT.contains(&g), "{g:?} must stay out of report JSON");
        }
        // `Fixer::from_category` is the same label space as `from_name`.
        for f in Fixer::ALL {
            assert_eq!(Fixer::from_category(f.name()), Some(f));
        }
        // The clock label round-trips too (it is serialized into metrics JSON).
        for clock in [Clock::Virtual, Clock::Wall] {
            assert_eq!(Clock::from_name(clock.name()), Some(clock));
        }
        assert_eq!(Clock::from_name("sundial"), None);
    }
}
