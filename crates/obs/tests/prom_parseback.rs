//! Parse-back sanity for the Prometheus text exposition: render a fully
//! populated snapshot, then re-parse the text and check the invariants a
//! scraper relies on — histogram buckets cumulative and capped by `_count`,
//! and every counter/gauge sample recoverable by name with its exact value.

use obs::{
    render_prometheus, CacheStats, Counter, ExecOpStats, Fixer, Gauge, SinkLoss, Stage,
    StageCacheStats, StageMetrics,
};

/// A snapshot with every enum populated and distinct per-variant values, so a
/// parse that confuses two series cannot pass by coincidence.
fn populated() -> StageMetrics {
    let mut m = StageMetrics::default();
    for (i, s) in Stage::ALL.into_iter().enumerate() {
        let base = (i as u64 + 1) * 3;
        m.observe(s, 1); // lowest bucket
        m.observe(s, base * 7); // mid buckets, stage-distinct
        m.observe(s, base * 1000); // high buckets
    }
    for (i, c) in Counter::ALL.into_iter().enumerate() {
        m.count(c, 100 + i as u64);
    }
    for (i, g) in Gauge::ALL.into_iter().enumerate() {
        m.set_gauge(g, 200 + i as u64);
    }
    for (i, f) in Fixer::ALL.into_iter().enumerate() {
        for _ in 0..=i {
            m.record_fix(f, i % 2 == 0);
        }
    }
    m
}

/// The one sample line `"{name} {value}"` (unlabeled series only); panics on
/// zero or multiple matches so prefix collisions are caught, not masked.
fn sample(text: &str, name: &str) -> u64 {
    let matches: Vec<u64> = text
        .lines()
        .filter_map(|l| l.strip_prefix(name))
        .filter_map(|rest| rest.strip_prefix(' '))
        .map(|v| v.parse().expect("sample value parses"))
        .collect();
    assert_eq!(matches.len(), 1, "exactly one `{name}` sample expected");
    matches[0]
}

#[test]
fn histogram_buckets_parse_back_cumulative_and_capped() {
    let m = populated();
    let text = render_prometheus(&m, None, None, None);
    for s in Stage::ALL {
        let prefix = format!("purple_stage_latency_bucket{{stage=\"{}\",le=\"", s.name());
        let buckets: Vec<(String, u64)> = text
            .lines()
            .filter_map(|l| l.strip_prefix(&prefix))
            .map(|rest| {
                let (le, v) = rest.split_once("\"} ").expect("bucket line shape");
                (le.to_string(), v.parse().expect("bucket value parses"))
            })
            .collect();
        assert!(!buckets.is_empty(), "stage {} has bucket series", s.name());
        for pair in buckets.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "stage {} buckets must be cumulative: le={} fell to {}",
                s.name(),
                pair[1].0,
                pair[1].1
            );
        }
        let (last_le, last_v) = buckets.last().expect("non-empty");
        assert_eq!(last_le, "+Inf", "series ends at the +Inf bucket");
        let count = sample(&text, &format!("purple_stage_latency_count{{stage=\"{}\"}}", s.name()));
        assert_eq!(*last_v, count, "stage {}: +Inf bucket equals _count", s.name());
        assert_eq!(count, m.stage(s).calls, "every observation landed in a bucket");
        let sum = sample(&text, &format!("purple_stage_latency_sum{{stage=\"{}\"}}", s.name()));
        assert_eq!(sum, m.stage(s).latency.sum);
    }
}

#[test]
fn every_counter_and_gauge_round_trips_by_name() {
    let m = populated();
    let text = render_prometheus(&m, None, None, None);
    for c in Counter::ALL {
        // The exposition name is `purple_<name>_total`; stripping the frame
        // must recover the variant through `from_name`.
        assert_eq!(Counter::from_name(c.name()), Some(c), "counter name is stable");
        let value = sample(&text, &format!("purple_{}_total", c.name()));
        assert_eq!(value, m.counter(c), "counter {} value survives the round trip", c.name());
    }
    for g in Gauge::ALL {
        assert_eq!(Gauge::from_name(g.name()), Some(g), "gauge name is stable");
        let value = sample(&text, &format!("purple_{}", g.name()));
        assert_eq!(value, m.gauge(g).unwrap_or(0), "gauge {} value survives", g.name());
    }
    for f in Fixer::ALL {
        assert_eq!(Fixer::from_name(f.name()), Some(f), "fixer name is stable");
        let hits = sample(&text, &format!("purple_fixer_hits_total{{fixer=\"{}\"}}", f.name()));
        assert_eq!(hits, m.fixer(f).hits);
    }
}

#[test]
fn optional_sections_expose_cache_ops_and_sink_loss() {
    let m = populated();
    let stage = |seed: u64| StageCacheStats {
        hits: seed,
        misses: seed + 1,
        evictions: seed + 2,
        entries: seed + 3,
    };
    let cache =
        CacheStats { parse: stage(10), plan: stage(20), result: stage(30), columns: stage(40) };
    let ops = ExecOpStats {
        batches: 51,
        rows_scanned: 52,
        hash_probes: 53,
        hash_probe_hits: 54,
        nested_loop_fallbacks: 55,
        hash_agg_groups: 56,
        column_builds: 57,
    };
    let loss = SinkLoss {
        dropped_traces: 61,
        dropped_spans: 62,
        dropped_event_batches: 63,
        dropped_events: 64,
    };
    let text = render_prometheus(&m, Some(&cache), Some(&ops), Some(&loss));
    for (label, s) in [
        ("parse", &cache.parse),
        ("plan", &cache.plan),
        ("result", &cache.result),
        ("columns", &cache.columns),
    ] {
        assert_eq!(sample(&text, &format!("purple_cache_hits_total{{cache=\"{label}\"}}")), s.hits);
        assert_eq!(
            sample(&text, &format!("purple_cache_misses_total{{cache=\"{label}\"}}")),
            s.misses
        );
        assert_eq!(
            sample(&text, &format!("purple_cache_evictions_total{{cache=\"{label}\"}}")),
            s.evictions
        );
        assert_eq!(sample(&text, &format!("purple_cache_entries{{cache=\"{label}\"}}")), s.entries);
    }
    assert_eq!(sample(&text, "purple_exec_batches_total"), ops.batches);
    assert_eq!(sample(&text, "purple_exec_rows_scanned_total"), ops.rows_scanned);
    assert_eq!(sample(&text, "purple_exec_hash_probes_total"), ops.hash_probes);
    assert_eq!(sample(&text, "purple_exec_column_builds_total"), ops.column_builds);
    for (name, value) in loss.series() {
        assert_eq!(sample(&text, &format!("purple_{name}_total")), value);
    }
    // Without the sections, none of those series leak into the exposition.
    let bare = render_prometheus(&m, None, None, None);
    for family in ["purple_cache_", "purple_exec_", "purple_dropped_"] {
        assert!(!bare.contains(family), "`{family}` series need their section enabled");
    }
}
