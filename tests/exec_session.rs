//! Integration tests of the prepared-plan execution layer and the shared
//! `ExecSession` cache: `prepare`+`run` must agree with one-shot `execute` on
//! arbitrary generated workloads, cached evaluation must produce byte-identical
//! reports to uncached evaluation for any job count, and the session's LRUs
//! must respect their capacity bound under churn.

use purple_repro::eval::report_to_json;
use purple_repro::prelude::*;

fn fixtures() -> &'static Suite {
    static SUITE: std::sync::OnceLock<Suite> = std::sync::OnceLock::new();
    SUITE.get_or_init(|| generate_suite(&GenConfig::tiny(777)))
}

fn pick(suite: &Suite, ix: usize) -> (&engine::Database, &Query) {
    let ex = &suite.dev.examples[ix % suite.dev.examples.len()];
    (suite.dev.db_of(ex), &ex.query)
}

/// The two-phase API is equivalent to one-shot execution over the whole
/// generated corpus, and a prepared plan is reusable: running it twice yields
/// identical rows.
#[test]
fn prepared_plan_run_matches_execute() {
    let suite = fixtures();
    for ix in (0..10_000).step_by(79) {
        let (db, q) = pick(suite, ix);
        let plan = prepare(db, q).expect("gold query prepares");
        let two_phase = run(&plan, db);
        let one_shot = execute(db, q).expect("gold query executes");
        assert_eq!(two_phase.rows, one_shot.rows, "rows diverged at ix={ix}");
        assert_eq!(two_phase.columns, one_shot.columns, "columns diverged at ix={ix}");
        let again = run(&plan, db);
        assert_eq!(two_phase.rows, again.rows, "plan rerun diverged at ix={ix}");
    }
}

/// Session-mediated execution returns the same rows as direct execution, on
/// both the cold (miss) and warm (hit) path.
#[test]
fn session_execute_matches_direct_execute() {
    let suite = fixtures();
    let session = ExecSession::shared();
    for ix in (0..10_000).step_by(79) {
        let (db, q) = pick(suite, ix);
        let direct = execute(db, q).expect("gold query executes");
        let cold = session.bind(db).execute(q).expect("session executes");
        assert_eq!(cold.rows, direct.rows, "cold path diverged at ix={ix}");
        let warm = session.bind(db).execute(q).expect("session re-executes");
        assert_eq!(warm.rows, direct.rows, "warm path diverged at ix={ix}");
    }
    assert!(session.stats().result.hits > 0, "warm pass produced no hits");
}

/// Cache on vs cache off must not change a single byte of the report, at any
/// job count — the session only memoizes pure functions of (database, SQL).
#[test]
fn cached_reports_are_byte_identical_for_any_job_count() {
    let mut cfg = GenConfig::tiny(777);
    cfg.dev_examples = 40;
    let suite = generate_suite(&cfg);
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let ts = purple_repro::eval::build_suites(
        &suite.dev,
        purple_repro::eval::SuiteConfig::default(),
        11,
    );
    let uncached =
        evaluate_par_with_session(&system, &suite.dev, Some(&ts), 1, &ExecSession::disabled());
    let baseline = report_to_json(&uncached);
    for jobs in [1usize, 4] {
        let session = ExecSession::shared();
        let cached = evaluate_par_with_session(&system, &suite.dev, Some(&ts), jobs, &session);
        assert_eq!(report_to_json(&cached), baseline, "cached report diverged at jobs={jobs}");
        let stats = session.stats();
        assert!(stats.result.hits > 0, "cache saw no result hits at jobs={jobs}: {stats:?}");
    }
}

/// Bounded LRUs: after far more distinct (db, SQL) keys than capacity, every
/// stage holds at most `capacity` entries and reports evictions.
#[test]
fn lru_bound_respected_under_churn() {
    let suite = fixtures();
    let capacity = 16usize;
    let session = std::sync::Arc::new(engine::ExecSession::new(capacity));
    let split = &suite.dev;
    let mut issued = 0usize;
    'outer: for ex in &split.examples {
        let db = split.db_of(ex);
        let sdb = session.bind(db);
        // Vary the SQL text per example so every probe is a distinct key.
        for limit in 0..4u64 {
            let mut q = ex.query.clone();
            q.core.limit = Some(100 + limit);
            let _ = sdb.execute(&q);
            issued += 1;
            if issued >= capacity * 8 {
                break 'outer;
            }
        }
    }
    assert!(issued >= capacity * 8, "corpus too small to churn the cache");
    let stats = session.stats();
    for (stage, s) in [("parse", &stats.parse), ("plan", &stats.plan), ("result", &stats.result)] {
        assert!(
            s.entries as usize <= capacity,
            "{stage} cache exceeded its bound: {} > {capacity}",
            s.entries
        );
    }
    assert!(stats.result.evictions > 0, "churn produced no result-cache evictions: {stats:?}");
}
