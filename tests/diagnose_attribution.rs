//! The failure-attribution contract (`repro --diagnose`): every EX-loss gets
//! exactly one blame verdict, the blame table and the structured event stream
//! are byte-identical for any worker count, and the attribution report
//! round-trips through the hand-rolled JSON codec both standalone and embedded
//! in a full [`eval::EvalReport`].

use bench_harness::{experiments as exp, ReproContext, Scale};

fn diagnose_at(jobs: usize) -> exp::DiagnoseOutput {
    let mut ctx = ReproContext::build(Scale::Tiny, 42);
    ctx.jobs = jobs;
    exp::diagnose(&ctx)
}

#[test]
fn blame_counts_sum_to_ex_losses_and_outputs_are_jobs_invariant() {
    let serial = diagnose_at(1);
    let parallel = diagnose_at(4);
    assert_eq!(serial.markdown, parallel.markdown, "blame table depends on --jobs");
    assert_eq!(serial.events_jsonl, parallel.events_jsonl, "event stream depends on --jobs");
    assert_eq!(serial.report, parallel.report, "report depends on --jobs");

    let attribution = serial.report.attribution.as_ref().expect("diagnose fills attribution");
    let losses = attribution.total - attribution.ex_correct;
    assert_eq!(attribution.blamed(), losses, "every EX-loss needs exactly one verdict");
    assert_eq!(attribution.counts.iter().sum::<usize>(), losses);
    assert!(attribution.ex_correct > 0, "tiny scale should get some examples right");
    assert!(losses > 0, "tiny scale should also miss some (else the test is vacuous)");

    // The markdown carries a row for every blame class and every fixer category.
    for blame in eval::Blame::ALL {
        assert!(
            serial.markdown.contains(&format!("| {} |", blame.name())),
            "markdown missing blame row {}",
            blame.name()
        );
    }
    for fixer in obs::Fixer::ALL {
        assert!(
            serial.markdown.contains(&format!("| {} |", fixer.name())),
            "markdown missing category row {}",
            fixer.name()
        );
    }
}

#[test]
fn event_stream_is_ordered_and_covers_every_example() {
    let out = diagnose_at(3);
    let mut last_example = 0usize;
    let mut examples = std::collections::BTreeSet::new();
    for line in out.events_jsonl.lines() {
        assert!(line.starts_with("{\"example\":"), "unexpected JSONL line: {line}");
        let idx: usize = line["{\"example\":".len()..]
            .split(',')
            .next()
            .and_then(|s| s.parse().ok())
            .expect("example index parses");
        assert!(idx >= last_example, "events not sorted by example index");
        last_example = idx;
        examples.insert(idx);
    }
    assert_eq!(
        examples.len(),
        out.report.attribution.as_ref().expect("attribution").total,
        "every evaluated example should contribute events"
    );
}

#[test]
fn attribution_round_trips_inside_the_report_codec() {
    let out = diagnose_at(2);
    let attribution = out.report.attribution.clone().expect("attribution");
    let json = eval::attribution_to_json(&attribution);
    assert_eq!(eval::attribution_from_json(&json).expect("parses"), attribution);
    let report_json = eval::report_to_json(&out.report);
    let parsed = eval::report_from_json(&report_json).expect("report parses");
    assert_eq!(parsed, out.report);
}
