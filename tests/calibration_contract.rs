//! The calibration contract: the qualitative claims EXPERIMENTS.md records must
//! hold whenever the Table-4 matrix is regenerated. The full check runs at medium
//! scale and takes ~30s, so it is `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test calibration_contract -- --ignored
//! ```

use bench_harness::{experiments as exp, ReproContext, Scale};

fn em(rows: &[exp::Row], name: &str) -> f64 {
    rows.iter().find(|r| r.system == name).unwrap_or_else(|| panic!("row {name} missing")).em
}

fn ex(rows: &[exp::Row], name: &str) -> f64 {
    rows.iter().find(|r| r.system == name).expect("row").ex
}

fn ts(rows: &[exp::Row], name: &str) -> f64 {
    rows.iter().find(|r| r.system == name).expect("row").ts
}

#[test]
#[ignore = "medium-scale regeneration (~1 minute); run with -- --ignored"]
fn table4_orderings_hold_at_medium_scale() {
    let mut ctx = ReproContext::build(Scale::Medium, 42);
    let rows = exp::table4(&mut ctx);

    // 1. PURPLE tops the LLM systems on every metric, on both tiers.
    for metric in [em, ex, ts] {
        for baseline in [
            "ChatGPT-SQL (ChatGPT)",
            "C3 (ChatGPT)",
            "Zero-shot (GPT4)",
            "Few-shot (GPT4)",
            "DIN-SQL (GPT4)",
            "DAIL-SQL (GPT4)",
        ] {
            assert!(
                metric(&rows, "PURPLE (GPT4)") > metric(&rows, baseline),
                "PURPLE (GPT4) must beat {baseline}"
            );
        }
    }

    // 2. PURPLE (ChatGPT) beats every GPT-4 baseline on EM — the paper's headline.
    for baseline in ["Zero-shot (GPT4)", "Few-shot (GPT4)", "DIN-SQL (GPT4)", "DAIL-SQL (GPT4)"] {
        assert!(
            em(&rows, "PURPLE (ChatGPT)") > em(&rows, baseline),
            "PURPLE (ChatGPT) EM must beat {baseline}"
        );
    }

    // 3. The EM << EX signature for zero-shot strategies (Table 1).
    for sys in ["ChatGPT-SQL (ChatGPT)", "C3 (ChatGPT)", "Zero-shot (GPT4)"] {
        assert!(ex(&rows, sys) > em(&rows, sys) + 15.0, "{sys} must show the EM<<EX signature");
    }

    // 4. TS <= EX for every row (the distilled suite removes coincidences).
    for r in &rows {
        assert!(r.ts <= r.ex + 0.001, "{}: TS {} > EX {}", r.system, r.ts, r.ex);
    }

    // 5. Demonstration quality ordering on EM: zero-shot < few-shot < DAIL < PURPLE.
    assert!(em(&rows, "Zero-shot (GPT4)") < em(&rows, "Few-shot (GPT4)"));
    assert!(em(&rows, "Few-shot (GPT4)") < em(&rows, "DAIL-SQL (GPT4)"));
    assert!(em(&rows, "DAIL-SQL (GPT4)") < em(&rows, "PURPLE (GPT4)"));

    // 6. The PLM family clusters at high EM (above every non-PURPLE LLM system).
    for plm in ["PICARD", "RASAT", "RESDSQL", "Graphix-T5"] {
        assert!(em(&rows, plm) > em(&rows, "DIN-SQL (GPT4)"), "{plm} EM too low");
    }
}

#[test]
#[ignore = "medium-scale regeneration (~30s); run with -- --ignored"]
fn ablation_signs_hold_at_medium_scale() {
    let ctx = ReproContext::build(Scale::Medium, 42);
    let rows = exp::table6(&ctx);
    let base_em = em(&rows, "PURPLE (ChatGPT)");
    let base_ex = ex(&rows, "PURPLE (ChatGPT)");
    assert!(em(&rows, "-Schema Pruning") < base_em);
    assert!(em(&rows, "-Demonstration Selection") + 5.0 < base_em, "selection is the big one");
    assert!(ex(&rows, "-Database Adaption") < base_ex);
    assert!(em(&rows, "+Oracle Skeleton") >= base_em);
}

#[test]
fn tiny_scale_smoke_of_the_same_contract() {
    // A fast, always-on subset of the contract.
    let mut ctx = ReproContext::build(Scale::Tiny, 42);
    let rows = exp::table4(&mut ctx);
    assert!(em(&rows, "PURPLE (GPT4)") > em(&rows, "ChatGPT-SQL (ChatGPT)"));
    assert!(ex(&rows, "C3 (ChatGPT)") > em(&rows, "C3 (ChatGPT)"));
    for r in &rows {
        assert!(r.ts <= r.ex + 0.001);
    }
}
