//! Trace-determinism contract (DESIGN.md §14): under the virtual work-unit
//! clock, the Chrome trace JSON exported from served traffic is
//! byte-identical for any worker count, any arrival order, and with batching
//! on or off — and every served request's span tree covers queue wait plus
//! every executed pipeline stage with consistent parent/child edges.

use bench_harness::serve::{run_load, synth_requests, ServeConfig, Server, TraceConfig};
use purple_repro::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

struct Fixture {
    bench: Arc<spidergen::Benchmark>,
    purple: Arc<Purple>,
    metrics: Arc<MetricsRegistry>,
}

fn fixture() -> Fixture {
    let mut cfg = GenConfig::tiny(2026);
    cfg.dev_examples = 24;
    let suite = generate_suite(&cfg);
    let metrics = MetricsRegistry::shared(Clock::Virtual);
    let session = ExecSession::shared_with(SessionConfig::for_workers(8));
    let purple = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT))
        .with_env(RunEnv::default().with_session(session).with_metrics(metrics.clone()));
    Fixture { bench: Arc::new(suite.dev.clone()), purple: Arc::new(purple), metrics }
}

/// Serve every dev example (plus a few repeats) through one configuration
/// with tracing on, and return the drained traces plus their Chrome export.
fn trace_once(
    fx: &Fixture,
    workers: usize,
    batching: bool,
    arrival_seed: u64,
) -> (obs::DrainedTraces, String) {
    let cfg = ServeConfig {
        workers,
        batching,
        queue_capacity: 8,
        batch_max: 6,
        trace: Some(TraceConfig::default()),
        ..ServeConfig::default()
    };
    let server = Server::start(fx.purple.clone(), fx.bench.clone(), fx.metrics.clone(), cfg);
    let requests = synth_requests(&fx.bench, fx.bench.examples.len() + 8, arrival_seed);
    let expected = requests.len();
    let (completions, _) = run_load(&server.handle(), requests).expect("load drives clean");
    let sink = server.trace_sink();
    server.shutdown();
    assert_eq!(completions.len(), expected);
    let drained = sink.drain();
    let json = obs::trace::to_chrome_trace(&drained, false);
    (drained, json)
}

#[test]
fn chrome_export_is_byte_identical_across_schedules() {
    let fx = fixture();
    let (ref_drained, ref_json) = trace_once(&fx, 1, true, 0xA11);
    assert_eq!(ref_drained.traces.len(), fx.bench.examples.len() + 8, "sample=1 keeps all");
    for (workers, batching, arrival_seed) in [(4, true, 0xB22), (8, true, 0xC33), (4, false, 0xD44)]
    {
        let (_, json) = trace_once(&fx, workers, batching, arrival_seed);
        assert_eq!(
            ref_json, json,
            "trace export diverged at workers={workers} batching={batching}"
        );
    }
}

#[test]
fn every_span_tree_covers_queue_wait_and_all_stages() {
    let fx = fixture();
    let (drained, _) = trace_once(&fx, 4, true, 0x5EED);
    assert_eq!(drained.dropped_traces, 0);
    assert_eq!(drained.dropped_spans, 0);
    for trace in &drained.traces {
        let by_id: BTreeMap<u32, &obs::SpanRecord> =
            trace.spans.iter().map(|s| (s.id, s)).collect();
        // Exactly one root, named "request", and every other span reaches it
        // through parent edges that point at earlier spans.
        let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1, "trace {} must have one root", trace.trace_id);
        assert_eq!(roots[0].name, "request");
        for span in &trace.spans {
            assert!(span.end >= span.start, "span {} closed before it opened", span.name);
            if let Some(parent) = span.parent {
                let p = by_id[&parent];
                assert!(p.id < span.id, "parent must start before child");
                assert!(
                    p.start <= span.start && p.end >= span.end,
                    "span {} must nest inside its parent {} (trace {})",
                    span.name,
                    p.name,
                    trace.trace_id
                );
            }
        }
        // Queue wait, the coalesce marker, and every pipeline stage appear;
        // the stage spans hang off the root, and exec leaves nest under the
        // adaption/vote spans that issued them.
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        for required in [
            "queue-wait",
            "batch-coalesce",
            obs::Stage::SchemaPruning.name(),
            obs::Stage::SkeletonPrediction.name(),
            obs::Stage::DemoSelection.name(),
            obs::Stage::PromptAssembly.name(),
            obs::Stage::LlmCall.name(),
            obs::Stage::Adaption.name(),
            obs::Stage::ConsistencyVote.name(),
        ] {
            assert!(
                names.contains(&required),
                "trace {} is missing span `{required}` (has {names:?})",
                trace.trace_id
            );
        }
        for span in &trace.spans {
            match span.name {
                "queue-wait" | "batch-coalesce" => {
                    assert_eq!(span.parent, Some(roots[0].id), "{} parents to root", span.name);
                    assert_eq!(span.virt(), 0, "{} declares no virtual work", span.name);
                }
                "exec" => {
                    let p = by_id[&span.parent.expect("exec spans are never roots")];
                    assert!(
                        p.name == obs::Stage::Adaption.name()
                            || p.name == obs::Stage::ConsistencyVote.name(),
                        "exec span parented to `{}` in trace {}",
                        p.name,
                        trace.trace_id
                    );
                }
                _ => {}
            }
        }
    }
}
