//! The run-registry and regression-gating contract (`repro --archive` /
//! `--baseline` / `--gate`, DESIGN.md §11): archived reports are byte-identical
//! for any worker count, a self-diff is all-zero, flip sets partition the
//! split, diff(A,B) mirrors diff(B,A), the diff JSON round-trips bit-exactly,
//! and the gate trips exactly when a candidate regresses past its thresholds.

use bench_harness::{experiments as exp, ReproContext, Scale};
use eval::{diff_from_json, diff_reports, diff_to_json, gate, EvalReport, GateConfig};
use llm::{CHATGPT, GPT4};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "purple-registry-it-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn archive_at(jobs: usize, profile: llm::LlmProfile) -> EvalReport {
    let mut ctx = ReproContext::build(Scale::Tiny, 42);
    ctx.jobs = jobs;
    exp::archive_eval(&mut ctx, profile)
}

fn manifest_for(report: &EvalReport, jobs: usize, profile: llm::LlmProfile) -> eval::RunManifest {
    eval::RunManifest {
        system: report.system.clone(),
        split: report.split.clone(),
        scale: "tiny".to_string(),
        seed: 42,
        jobs,
        profile: profile.name.to_string(),
        config_fingerprint: eval::fingerprint(&format!(
            "{:?}",
            purple::PurpleConfig::default_with(profile)
        )),
        git_rev: "test".to_string(),
        schema_version: eval::REPORT_SCHEMA_VERSION,
        examples: report.overall.n,
    }
}

#[test]
fn archived_report_is_jobs_invariant_and_full_fidelity() {
    let serial = archive_at(1, CHATGPT);
    let parallel = archive_at(4, CHATGPT);
    assert_eq!(
        eval::report_to_json(&serial),
        eval::report_to_json(&parallel),
        "archived report bytes depend on --jobs"
    );
    assert!(serial.has_ts, "archive evaluation must compute TS");
    assert!(serial.attribution.is_some(), "archive evaluation must attribute failures");
    assert_eq!(serial.examples.len(), serial.overall.n, "one outcome per example");
}

#[test]
fn self_diff_is_empty_and_gates_clean() {
    let report = archive_at(2, CHATGPT);
    let diff = diff_reports("base", &report, "cand", &report).expect("same split diffs");
    assert!(diff.is_empty(), "self-diff must be all-zero");
    assert!(diff.render_markdown().contains("All-zero diff"));
    let outcome = gate(&diff, &GateConfig::default());
    assert!(outcome.passed, "self-diff tripped the gate: {:?}", outcome.violations);
}

#[test]
fn flip_sets_partition_and_mirror_between_profiles() {
    let a = archive_at(2, CHATGPT);
    let b = archive_at(2, GPT4);
    let ab = diff_reports("a", &a, "b", &b).expect("diffable");
    let ba = diff_reports("b", &b, "a", &a).expect("diffable");

    assert!(!ab.is_empty(), "profile perturbation should flip something");
    for (name, m) in [("em", &ab.em), ("ex", &ab.ex), ("ts", &ab.ts)] {
        assert_eq!(
            m.regressed.len() + m.fixed.len() + m.unchanged_hit + m.unchanged_miss,
            ab.n,
            "{name} flip sets do not partition the split"
        );
    }
    // diff(A,B) mirrors diff(B,A): flips swap roles, significance is symmetric.
    assert_eq!(ab.ex.regressed, ba.ex.fixed);
    assert_eq!(ab.ex.fixed, ba.ex.regressed);
    assert_eq!(ab.em.regressed, ba.em.fixed);
    assert_eq!(ab.ts.regressed, ba.ts.fixed);
    assert_eq!(ab.ex.mcnemar_p, ba.ex.mcnemar_p);
    assert_eq!(ab.avg_output_tokens_delta, -ba.avg_output_tokens_delta);

    // The dashboard renders the movement.
    let md = ab.render_markdown();
    assert!(md.contains("## Metrics"), "dashboard missing metric table:\n{md}");
    assert!(md.contains("Failure attribution shift"), "dashboard missing blame table");
}

#[test]
fn diff_json_round_trips_bit_exactly() {
    let a = archive_at(2, CHATGPT);
    let b = archive_at(2, GPT4);
    let diff = diff_reports("a", &a, "b", &b).expect("diffable");
    let json = diff_to_json(&diff);
    let parsed = diff_from_json(&json).expect("diff JSON parses");
    assert_eq!(parsed, diff, "diff JSON lost information");
    assert_eq!(diff_to_json(&parsed), json, "re-serialization is not bit-exact");
}

#[test]
fn registry_round_trips_runs_and_stays_append_only() {
    let root = scratch_dir("round-trip");
    let registry = eval::RunRegistry::open(&root).expect("open registry");

    let report = archive_at(2, CHATGPT);
    let manifest = manifest_for(&report, 2, CHATGPT);
    let id = registry.record(&manifest, &report).expect("record");

    // Re-recording the identical run is idempotent, even from a different
    // worker count (jobs is informational and excluded from the run id).
    let again = manifest_for(&report, 8, CHATGPT);
    assert_eq!(again.run_id(), id, "jobs must not change the run id");
    assert_eq!(registry.record(&again, &report).expect("idempotent"), id);

    let (loaded_manifest, loaded_report) = registry.load(&id).expect("load");
    assert_eq!(loaded_manifest, manifest, "first-written manifest stands");
    assert_eq!(loaded_report, report);

    // A different profile archives under a different id in the same registry.
    let other = archive_at(2, GPT4);
    let other_id = registry.record(&manifest_for(&other, 2, GPT4), &other).expect("record gpt4");
    assert_ne!(other_id, id);
    assert_eq!(registry.run_ids().expect("index"), vec![id.clone(), other_id.clone()]);
    assert_eq!(registry.resolve("latest").expect("latest"), other_id);

    // Same id with a diverging report is an append-only violation.
    let mut tampered = report.clone();
    tampered.overall.em += 1;
    let err = registry.record(&manifest, &tampered).expect_err("divergent content");
    assert!(err.contains("append-only"), "unexpected error: {err}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn gate_trips_on_profile_regression_but_honors_thresholds() {
    let strong = archive_at(2, GPT4);
    let weak = archive_at(2, CHATGPT);
    let diff = diff_reports("strong", &strong, "weak", &weak).expect("diffable");
    let regressions = diff.ex.regressed.len() + diff.ts.regressed.len();
    assert!(regressions > 0, "the weaker profile should regress somewhere");

    let strict = gate(&diff, &GateConfig::default());
    assert!(!strict.passed, "default thresholds must trip on a regression");
    assert!(!strict.violations.is_empty());

    let lax = gate(
        &diff,
        &GateConfig {
            max_ex_regressions: diff.ex.regressed.len(),
            max_ts_regressions: diff.ts.regressed.len(),
            max_blame_share_increase: 100.0,
        },
    );
    assert!(lax.passed, "thresholds at the observed movement must pass: {:?}", lax.violations);
}
