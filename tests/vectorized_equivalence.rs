//! Differential integration tests of the vectorized columnar engine against
//! the legacy row-at-a-time interpreter on generated Spider-like corpora:
//! both engines must agree exactly on every gold query, and the evaluation
//! report must be byte-identical under any session mode (vectorized, legacy,
//! disabled) at any job count.

use purple_repro::eval::report_to_json;
use purple_repro::prelude::*;

fn fixtures() -> &'static Suite {
    static SUITE: std::sync::OnceLock<Suite> = std::sync::OnceLock::new();
    SUITE.get_or_init(|| generate_suite(&GenConfig::tiny(777)))
}

/// Sweep the generated dev corpus: the vectorized engine must produce exactly
/// the rows, columns, and `Value` variants of the legacy interpreter on every
/// gold query (NULL propagation, Kleene predicates, grouping and set-op edge
/// cases included — spidergen emits all of them).
#[test]
fn vectorized_matches_legacy_on_generated_corpus() {
    let suite = fixtures();
    for (ix, ex) in suite.dev.examples.iter().enumerate() {
        let db = suite.dev.db_of(ex);
        let legacy = execute(db, &ex.query).expect("gold query executes");
        let vectorized = execute_vectorized(db, &ex.query).expect("gold query executes");
        assert_eq!(legacy, vectorized, "engines diverged at dev ix={ix}");
        // Debug formatting distinguishes Int(3) from Float(3.0) where
        // PartialEq does not; the report surface serializes variants.
        assert_eq!(
            format!("{legacy:?}"),
            format!("{vectorized:?}"),
            "value variants diverged at dev ix={ix}"
        );
    }
}

/// A second seed, swept through sessions in every mode: the session layer
/// (column cache included) must not change a single value either.
#[test]
fn session_modes_agree_on_generated_corpus() {
    let suite = generate_suite(&GenConfig::tiny(2024));
    let vectorized = ExecSession::shared();
    let legacy = ExecSession::shared_legacy();
    let disabled = ExecSession::disabled();
    for (ix, ex) in suite.dev.examples.iter().enumerate() {
        let db = suite.dev.db_of(ex);
        let reference = execute(db, &ex.query).expect("gold query executes");
        for (name, session) in
            [("vectorized", &vectorized), ("legacy", &legacy), ("disabled", &disabled)]
        {
            let got = session.bind(db).execute(&ex.query).expect("session executes");
            assert_eq!(reference, *got, "{name} session diverged at dev ix={ix}");
        }
    }
    assert!(vectorized.stats().columns.misses > 0, "vectorized session built no columns");
    assert!(vectorized.op_stats().batches > 0, "vectorized session ran no operators");
    assert_eq!(legacy.op_stats(), obs::ExecOpStats::default());
}

/// The hard contract of DESIGN.md §12: the full evaluation report is
/// byte-identical whichever engine executes it, with the cache on or off, at
/// --jobs 1 and 4.
#[test]
fn reports_are_byte_identical_across_engines_and_job_counts() {
    let mut cfg = GenConfig::tiny(777);
    cfg.dev_examples = 40;
    let suite = generate_suite(&cfg);
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let ts = purple_repro::eval::build_suites(
        &suite.dev,
        purple_repro::eval::SuiteConfig::default(),
        11,
    );
    let baseline = report_to_json(&evaluate_par_with_session(
        &system,
        &suite.dev,
        Some(&ts),
        1,
        &ExecSession::disabled(),
    ));
    for jobs in [1usize, 4] {
        for (name, session) in
            [("vectorized", ExecSession::shared()), ("legacy", ExecSession::shared_legacy())]
        {
            let report = evaluate_par_with_session(&system, &suite.dev, Some(&ts), jobs, &session);
            assert_eq!(report_to_json(&report), baseline, "{name} report diverged at jobs={jobs}");
        }
    }
}
