//! Integration tests of the DML write path across crate boundaries: generated
//! NL→DML corpora must execute identically on the legacy and vectorized
//! engines (outcome *and* post-write state), the session caches must never
//! serve stale reads across a mutation, and the state-scored DML evaluation
//! report must be byte-identical across engines, cache modes, and job counts.

use purple_repro::eval::{evaluate_dml_par, report_to_json, DmlOracle};
use purple_repro::prelude::*;
use purple_repro::spidergen::{
    dbgen::{instantiate, GeneratedDb, PerturbConfig},
    domains::train_domains,
    generate_write_split, QueryProfile, StatementKind, WriteBenchmark,
};
use rand::{rngs::StdRng, SeedableRng};

fn gen_bench(profile: &QueryProfile, n: usize, seed: u64) -> WriteBenchmark {
    let templates = train_domains();
    let mut rng = StdRng::seed_from_u64(seed);
    let gdbs: Vec<GeneratedDb> = templates
        .iter()
        .take(6)
        .map(|t| instantiate(t, &format!("{}_it", t.name), &mut rng, PerturbConfig::default()))
        .collect();
    generate_write_split("dml", &gdbs, profile, n, &mut rng)
}

fn fixtures() -> &'static WriteBenchmark {
    static BENCH: std::sync::OnceLock<WriteBenchmark> = std::sync::OnceLock::new();
    BENCH.get_or_init(|| gen_bench(&QueryProfile::mixed_dml(), 120, 777))
}

/// Sweep the generated mixed corpus: for every gold write, the legacy
/// interpreter and the vectorized engine must produce the same `WriteOutcome`
/// and leave the database in exactly the same state (fingerprint and full
/// table contents). Gold reads must agree across engines on the same corpora.
#[test]
fn write_outcomes_and_post_states_agree_across_engines() {
    let bench = fixtures();
    let mut writes = 0usize;
    for (ix, ex) in bench.examples.iter().enumerate() {
        let db = bench.db_of(ex);
        match &ex.statement {
            sqlkit::ast::Statement::Select(q) => {
                let legacy = execute(db, q).expect("gold read executes");
                let vectorized = execute_vectorized(db, q).expect("gold read executes");
                assert_eq!(legacy, vectorized, "read engines diverged at ix={ix}");
            }
            stmt => {
                writes += 1;
                let plan = engine::prepare_write(db, stmt).expect("gold write compiles");
                let mut legacy_db = db.clone();
                let mut vector_db = db.clone();
                let legacy = engine::apply_write(&plan, &mut legacy_db);
                let vectorized = engine::apply_write_vectorized(&plan, &mut vector_db);
                assert_eq!(legacy, vectorized, "write outcomes diverged at ix={ix}");
                assert_eq!(
                    legacy_db.fingerprint(),
                    vector_db.fingerprint(),
                    "post-write fingerprints diverged at ix={ix}"
                );
                assert_eq!(
                    format!("{:?}", legacy_db.rows),
                    format!("{:?}", vector_db.rows),
                    "post-write contents diverged at ix={ix}"
                );
                assert_eq!(
                    legacy.fingerprint,
                    legacy_db.fingerprint(),
                    "outcome fingerprint is not the post-state fingerprint at ix={ix}"
                );
            }
        }
    }
    assert!(writes > 30, "mixed profile generated too few writes: {writes}");
}

/// The invalidation contract, end to end on generated corpora: a COUNT over
/// the target table, cached by a warm shared session, must reflect every gold
/// mutation immediately — `before + inserted - deleted` — and must match what
/// an uncached session computes from the mutated state.
#[test]
fn session_caches_never_serve_stale_reads_across_mutations() {
    let bench = fixtures();
    let session = ExecSession::shared();
    let uncached = ExecSession::disabled();
    let mut mutations = 0usize;
    for (ix, ex) in bench.examples.iter().enumerate() {
        let Some(table) = ex.statement.target_table() else { continue };
        let mut db = bench.db_of(ex).clone();
        let count = sqlkit::parse(&format!("SELECT COUNT(*) FROM {table}")).expect("count parses");
        // Prime the cache, twice, so the post-write read would hit stale
        // entries if invalidation were broken.
        let before = session.bind(&db).execute(&count).expect("pre-write count");
        let primed = session.bind(&db).execute(&count).expect("cached count");
        assert_eq!(before.rows, primed.rows);
        let outcome = match session.apply(&mut db, &ex.statement).expect("gold write applies") {
            engine::StatementOutcome::Write(o) => o,
            engine::StatementOutcome::Rows(_) => unreachable!("target_table implies a write"),
        };
        let after = session.bind(&db).execute(&count).expect("post-write count");
        let fresh = uncached.bind(&db).execute(&count).expect("uncached count");
        assert_eq!(after.rows, fresh.rows, "stale cached count served at ix={ix}");
        let (Value::Int(n0), Value::Int(n1)) = (&before.rows[0][0], &after.rows[0][0]) else {
            panic!("COUNT(*) must be Int at ix={ix}");
        };
        assert_eq!(
            *n1,
            *n0 + outcome.rows_inserted as i64 - outcome.rows_deleted as i64,
            "row count did not track the write outcome at ix={ix}"
        );
        if outcome.rows_affected > 0 {
            mutations += 1;
        }
    }
    assert!(mutations > 20, "corpus exercised too few effective mutations: {mutations}");
    assert!(session.stats().result.hits > 0, "priming pass produced no cache hits");
}

/// The DML analog of DESIGN.md §12: the state-scored evaluation report is
/// byte-identical whichever engine executes it, with caches on or off, at
/// --jobs 1 and 4.
#[test]
fn dml_reports_are_byte_identical_across_engines_caches_and_jobs() {
    let bench = fixtures();
    let baseline =
        report_to_json(&evaluate_dml_par(&DmlOracle, bench, &ExecSession::disabled(), 1));
    for jobs in [1usize, 4] {
        for (name, session) in [
            ("vectorized", ExecSession::shared()),
            ("legacy", ExecSession::shared_legacy()),
            ("disabled", ExecSession::disabled()),
        ] {
            let report = evaluate_dml_par(&DmlOracle, bench, &session, jobs);
            assert_eq!(report_to_json(&report), baseline, "{name} diverged at jobs={jobs}");
            assert_eq!(report.overall.em, report.overall.n, "oracle must score perfectly");
            assert_eq!(report.overall.ts, report.overall.n, "oracle must match every state");
        }
    }
}

/// A read-only profile degrades the write generator to a plain SELECT
/// generator: every example is a read, and the same state-scoring harness
/// evaluates it standalone.
#[test]
fn read_only_profile_generates_selects_and_scores_standalone() {
    let bench = gen_bench(&QueryProfile::read_only(), 40, 2024);
    assert_eq!(bench.examples.len(), 40);
    for ex in &bench.examples {
        assert_eq!(ex.kind, StatementKind::Read);
        assert!(!ex.statement.is_write(), "read-only profile emitted a write: {}", ex.sql);
    }
    let report = evaluate_dml_par(&DmlOracle, &bench, &ExecSession::shared(), 2);
    assert_eq!(report.overall.em, report.overall.n, "oracle echo must EM on reads");
    assert_eq!(report.overall.ex, report.overall.n, "oracle echo must EX on reads");
}
