//! Serving-layer determinism contract: the same request set pushed through
//! the concurrent front-end at any worker count, in any arrival order, with
//! batching on or off, yields byte-identical response bodies — and the
//! report replayed from served traffic is byte-identical to a sequential
//! [`evaluate_with_session`] pass over the same translator.

use bench_harness::serve::{replay_report, run_load, synth_requests, ServeConfig, Server};
use purple_repro::prelude::*;
use std::sync::Arc;

struct Fixture {
    bench: Arc<spidergen::Benchmark>,
    purple: Arc<Purple>,
    session: Arc<ExecSession>,
    metrics: Arc<MetricsRegistry>,
}

fn fixture() -> Fixture {
    let mut cfg = GenConfig::tiny(2026);
    cfg.dev_examples = 24;
    let suite = generate_suite(&cfg);
    let metrics = MetricsRegistry::shared(Clock::Virtual);
    let session = ExecSession::shared_with(SessionConfig::for_workers(8));
    let purple = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT))
        .with_env(RunEnv::default().with_session(session.clone()).with_metrics(metrics.clone()));
    Fixture { bench: Arc::new(suite.dev.clone()), purple: Arc::new(purple), session, metrics }
}

/// Drive the same id-stable request set (cycling every dev example, arrival
/// order shuffled by `arrival_seed`) through one server configuration and
/// return (response bodies sorted by id, replayed report JSON).
fn serve_once(fx: &Fixture, workers: usize, batching: bool, arrival_seed: u64) -> (String, String) {
    let cfg = ServeConfig {
        workers,
        batching,
        queue_capacity: 8,
        batch_max: 6,
        trace: None,
        ..ServeConfig::default()
    };
    let server = Server::start(fx.purple.clone(), fx.bench.clone(), fx.metrics.clone(), cfg);
    let requests = synth_requests(&fx.bench, fx.bench.examples.len() + 8, arrival_seed);
    let (mut completions, stats) = run_load(&server.handle(), requests).expect("load drives clean");
    server.shutdown();
    assert_eq!(stats.requests, fx.bench.examples.len() + 8);
    completions.sort_by_key(|c| c.response.id);
    let bodies = completions
        .iter()
        .map(|c| eval::response_to_json(&c.response))
        .collect::<Vec<_>>()
        .join("\n");
    let system = eval::Translator::name(fx.purple.as_ref());
    let report = replay_report(&system, &fx.bench, None, &fx.session, &completions)
        .expect("traffic covers the split");
    (bodies, eval::report_to_json(&report))
}

#[test]
fn any_worker_count_and_arrival_order_is_byte_identical() {
    let fx = fixture();
    let (ref_bodies, ref_report) = serve_once(&fx, 1, true, 0xA11);
    for (workers, batching, arrival_seed) in [(4, true, 0xB22), (8, true, 0xC33), (4, false, 0xD44)]
    {
        let (bodies, report) = serve_once(&fx, workers, batching, arrival_seed);
        assert_eq!(
            ref_bodies, bodies,
            "response bodies diverged at workers={workers} batching={batching}"
        );
        assert_eq!(
            ref_report, report,
            "replayed report diverged at workers={workers} batching={batching}"
        );
    }
    // And the served report is the sequential evaluation, byte for byte.
    let direct = evaluate_with_session(fx.purple.as_ref(), &fx.bench, None, &fx.session);
    assert_eq!(ref_report, eval::report_to_json(&direct));
}
