//! Cross-crate integration tests: the full pipeline from benchmark generation
//! through translation to evaluation, asserting the paper's qualitative claims
//! hold end-to-end at test scale.

use purple_repro::prelude::*;

fn suite() -> Suite {
    let mut cfg = GenConfig::tiny(2024);
    cfg.dev_examples = 80;
    generate_suite(&cfg)
}

#[test]
fn purple_end_to_end_beats_zero_shot_on_both_metrics() {
    let suite = suite();
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let purple_report = evaluate(&system, &suite.dev, None);

    let models = SharedModels::from_purple(&system);
    let zero = LlmBaseline::new(Strategy::ChatGptSql, CHATGPT, models);
    let zero_report = evaluate(&zero, &suite.dev, None);

    assert!(
        purple_report.overall.em_pct() > zero_report.overall.em_pct() + 10.0,
        "PURPLE EM {:.1} should dominate zero-shot {:.1}",
        purple_report.overall.em_pct(),
        zero_report.overall.em_pct()
    );
    assert!(
        purple_report.overall.ex_pct() > zero_report.overall.ex_pct(),
        "PURPLE EX {:.1} should beat zero-shot {:.1}",
        purple_report.overall.ex_pct(),
        zero_report.overall.ex_pct()
    );
    // The zero-shot EM << EX signature of the paper's Table 1.
    assert!(
        zero_report.overall.ex_pct() > zero_report.overall.em_pct() + 8.0,
        "zero-shot EX {:.1} should far exceed its EM {:.1}",
        zero_report.overall.ex_pct(),
        zero_report.overall.em_pct()
    );
}

#[test]
fn ts_never_exceeds_ex_and_em_is_value_blind() {
    let suite = suite();
    let ts = build_suites(&suite.dev, SuiteConfig::default(), 3);
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let report = evaluate(&system, &suite.dev, Some(&ts));
    assert!(
        report.overall.ts <= report.overall.ex,
        "TS hits {} cannot exceed EX hits {} (suite includes the original instance)",
        report.overall.ts,
        report.overall.ex
    );
    assert!(report.has_ts);
}

#[test]
fn gpt4_profile_dominates_chatgpt_for_purple() {
    let suite = suite();
    let base = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let chatgpt = base.with_config(PurpleConfig::default_with(CHATGPT));
    let gpt4 = base.with_config(PurpleConfig::default_with(GPT4));
    let r35 = evaluate(&chatgpt, &suite.dev, None);
    let r4 = evaluate(&gpt4, &suite.dev, None);
    assert!(
        r4.overall.em_pct() >= r35.overall.em_pct(),
        "GPT4 {:.1} vs ChatGPT {:.1}",
        r4.overall.em_pct(),
        r35.overall.em_pct()
    );
}

#[test]
fn predictions_parse_and_mostly_execute() {
    let suite = suite();
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let mut parseable = 0;
    let mut executable = 0;
    let n = 40.min(suite.dev.examples.len());
    for (i, ex) in suite.dev.examples.iter().take(n).enumerate() {
        let db = suite.dev.db_of(ex);
        let t = system.run(Job::new(i, ex, db)).translation;
        if let Ok(q) = parse(&t.sql) {
            parseable += 1;
            if execute(db, &q).is_ok() {
                executable += 1;
            }
        }
    }
    assert_eq!(parseable, n, "every PURPLE output must parse");
    assert!(executable * 100 >= n * 90, "at least 90% must execute ({executable}/{n})");
}

#[test]
fn variant_splits_are_harder_than_dev() {
    let suite = suite();
    let base = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let on_dev = base.with_config(PurpleConfig::default_with(CHATGPT));
    let dev_em = evaluate(&on_dev, &suite.dev, None).overall.em_pct();
    for split in [&suite.dk, &suite.syn] {
        let sys = base.with_config(PurpleConfig::default_with(CHATGPT));
        let em = evaluate(&sys, split, None).overall.em_pct();
        assert!(
            em <= dev_em + 5.0,
            "{} EM {:.1} should not beat plain dev {:.1} by a margin",
            split.name,
            em,
            dev_em
        );
    }
}

#[test]
fn oracle_skeleton_does_not_hurt() {
    let suite = suite();
    let base = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let default_sys = base.with_config(PurpleConfig::default_with(CHATGPT));
    let mut oracle_cfg = PurpleConfig::default_with(CHATGPT);
    oracle_cfg.oracle_skeleton = true;
    let oracle_sys = base.with_config(oracle_cfg);
    let d = evaluate(&default_sys, &suite.dev, None).overall.em_pct();
    let o = evaluate(&oracle_sys, &suite.dev, None).overall.em_pct();
    assert!(o + 3.0 >= d, "oracle skeleton {:.1} should not trail default {:.1}", o, d);
}

#[test]
fn token_budgets_are_respected_end_to_end() {
    let suite = suite();
    let base = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    for len in [512u64, 1024, 3072] {
        let mut cfg = PurpleConfig::default_with(CHATGPT);
        cfg.len_budget = len;
        cfg.num_consistency = 3;
        let sys = base.with_config(cfg);
        for (i, ex) in suite.dev.examples.iter().take(10).enumerate() {
            let t = sys.run(Job::new(i, ex, suite.dev.db_of(ex))).translation;
            assert!(t.prompt_tokens <= len, "prompt {} exceeded budget {len}", t.prompt_tokens);
        }
    }
}

#[test]
fn traced_run_is_consistent_with_plain_run() {
    let suite = suite();
    let base = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let a = base.with_config(PurpleConfig::default_with(CHATGPT));
    let b = base.with_config(PurpleConfig::default_with(CHATGPT));
    for (i, ex) in suite.dev.examples.iter().take(8).enumerate() {
        let db = suite.dev.db_of(ex);
        let plain = a.run(Job::new(i, ex, db));
        let traced = b.run(Job::new(i, ex, db).with_trace(true));
        assert!(plain.trace.is_none(), "trace must be opt-in");
        let trace = traced.trace.expect("trace requested");
        assert_eq!(plain.translation.sql, traced.translation.sql);
        assert_eq!(trace.sql, traced.translation.sql);
        assert_eq!(trace.prompt_tokens, traced.translation.prompt_tokens);
        assert!(trace.demos_in_prompt <= trace.selected.len());
        assert!(!trace.predictions.is_empty());
        assert!(trace.prune_quality >= 0.0 && trace.prune_quality <= 1.0);
        // Tracing must not perturb the recorded metrics.
        assert_eq!(plain.metrics, traced.metrics);
    }
}
