//! Property-based integration tests of the hallucination-injection / database-
//! adaption loop: for gold queries drawn from the generator, every injected
//! Table-2 error must be diagnosed with the right category, and the adaption
//! module must restore executability — usually to the exact gold semantics.

use proptest::prelude::*;
use purple_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixtures() -> &'static (Suite, Vec<(usize, Query)>) {
    static FIX: std::sync::OnceLock<(Suite, Vec<(usize, Query)>)> = std::sync::OnceLock::new();
    FIX.get_or_init(|| {
        let suite = generate_suite(&GenConfig::tiny(555));
        let goldens: Vec<(usize, Query)> =
            suite.dev.examples.iter().map(|e| (e.db_index, e.query.clone())).collect();
        (suite, goldens)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn injected_hallucinations_are_diagnosed_and_repaired(seed in 0u64..10_000) {
        let (suite, goldens) = fixtures();
        let mut rng = StdRng::seed_from_u64(seed);
        let (db_index, gold) = &goldens[(seed as usize) % goldens.len()];
        let db = &suite.dev.databases[*db_index];
        let mut q = gold.clone();
        let Some(category) = llm::writer::inject_hallucination(&mut q, db, &mut rng) else {
            // Query shape admits no injection — that is fine.
            return Ok(());
        };
        let broken_sql = q.to_string();
        // The engine must fail with exactly the injected category.
        let err = engine::execute(db, &q);
        prop_assert!(err.is_err(), "injected {category} but `{broken_sql}` executed");
        prop_assert_eq!(err.unwrap_err().category(), category);
        // Adaption restores executability.
        let fixed = purple::adapt_sql(&broken_sql, db, &mut rng);
        prop_assert!(
            fixed.executable,
            "adaption failed to repair {category}: `{broken_sql}` -> `{}`",
            fixed.sql
        );
        prop_assert!(fixed.fixes.contains(&category), "fix log {:?} missing {category}", fixed.fixes);
    }

    #[test]
    fn adaption_leaves_valid_gold_sql_untouched(ix in 0usize..1000) {
        let (suite, goldens) = fixtures();
        let (db_index, gold) = &goldens[ix % goldens.len()];
        let db = &suite.dev.databases[*db_index];
        let sql = gold.to_string();
        let mut rng = StdRng::seed_from_u64(ix as u64);
        let r = purple::adapt_sql(&sql, db, &mut rng);
        prop_assert!(r.executable);
        prop_assert!(r.fixes.is_empty(), "gold SQL should need no fixes, got {:?}", r.fixes);
        prop_assert_eq!(r.sql, sql);
    }

    #[test]
    fn near_miss_rewrites_always_parse_and_usually_execute(seed in 0u64..10_000) {
        let (suite, goldens) = fixtures();
        let mut rng = StdRng::seed_from_u64(seed);
        let (db_index, gold) = &goldens[(seed as usize) % goldens.len()];
        let db = &suite.dev.databases[*db_index];
        if let Some(m) = llm::rewrites::near_miss(gold, db, 0.7, &mut rng) {
            let text = m.to_string();
            let reparsed = parse(&text);
            prop_assert!(reparsed.is_ok(), "near-miss `{text}` does not parse");
            prop_assert_eq!(reparsed.unwrap(), m);
        }
    }

    #[test]
    fn consistency_vote_is_order_insensitive_for_clean_samples(seed in 0u64..1000) {
        let (suite, goldens) = fixtures();
        let (db_index, gold) = &goldens[(seed as usize) % goldens.len()];
        let db = &suite.dev.databases[*db_index];
        let sql = gold.to_string();
        // Identical clean samples in any order vote to the same SQL.
        let samples = vec![sql.clone(), sql.clone(), sql.clone()];
        let mut rng = StdRng::seed_from_u64(seed);
        let v = purple::consistency_vote(&samples, db, &mut rng, None, None);
        prop_assert!(v.executable);
        prop_assert_eq!(v.sql, sql);
    }
}

#[test]
fn every_category_is_injectable_somewhere_on_dev() {
    let (suite, goldens) = fixtures();
    let mut seen: std::collections::HashSet<&'static str> = std::collections::HashSet::new();
    let mut rng = StdRng::seed_from_u64(1);
    // Dev goldens plus crafted COUNT(DISTINCT <col>) probes per database, so the
    // aggregation injector always has an applicable shape regardless of which
    // patterns the sampled dev split happens to contain.
    let mut probes: Vec<(usize, Query)> = goldens.clone();
    for (di, db) in suite.dev.databases.iter().enumerate() {
        if let Some(t) = db.schema.tables.first() {
            if let Some(c) = t
                .columns
                .iter()
                .find(|c| Some(&c.name) != t.primary_key.map(|pk| &t.columns[pk].name))
            {
                let sql = format!("SELECT COUNT(DISTINCT {}) FROM {}", c.name, t.name);
                if let Ok(q) = parse(&sql) {
                    probes.push((di, q));
                }
            }
        }
    }
    for (db_index, gold) in &probes {
        let db = &suite.dev.databases[*db_index];
        for _ in 0..4 {
            let mut q = gold.clone();
            if let Some(c) = llm::writer::inject_hallucination(&mut q, db, &mut rng) {
                seen.insert(c);
            }
        }
    }
    for expected in [
        "function-hallucination",
        "aggregation-hallucination",
        "schema-hallucination",
        "table-column-mismatch",
        "column-ambiguity",
        "missing-table",
    ] {
        assert!(seen.contains(expected), "category {expected} never injectable; saw {seen:?}");
    }
}
