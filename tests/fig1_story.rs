//! The paper's Fig. 1, replayed end-to-end: "What are the countries that are not
//! playing cartoons written by Todd Casey?" on the TV database.
//!
//! The story: the gold SQL needs `EXCEPT` with a join (de-duplicated country set);
//! the plausible `NOT IN` variant returns duplicate countries and is wrong. A
//! demonstration with the *same operator composition* (the paper's Fig. 2 invoice
//! example) matches at Structure level and teaches the simulated LLM the right
//! composition; keyword-set similarity cannot tell the two shapes apart.

use purple_repro::prelude::*;
use sqlkit::{Column, ColumnId, ColumnType, ForeignKey, Table};
use std::collections::BTreeSet;

const GOLD: &str = "SELECT Country FROM tv_channel EXCEPT SELECT T1.Country FROM tv_channel \
                    AS T1 JOIN cartoon AS T2 ON T1.id = T2.channel WHERE T2.written_by = \
                    'Todd Casey'";
const NOT_IN: &str = "SELECT Country FROM tv_channel WHERE id NOT IN (SELECT channel FROM \
                      cartoon WHERE written_by = 'Todd Casey')";

fn tv_db() -> engine::Database {
    let mut s = Schema::new("tvdb");
    s.tables.push(Table {
        name: "tv_channel".into(),
        display: "tv channel".into(),
        columns: vec![
            Column::new("id", ColumnType::Int),
            Column::new("series_name", ColumnType::Text),
            Column::new("country", ColumnType::Text),
        ],
        primary_key: Some(0),
    });
    s.tables.push(Table {
        name: "cartoon".into(),
        display: "cartoon".into(),
        columns: vec![
            Column::new("id", ColumnType::Int),
            Column::new("title", ColumnType::Text),
            Column::new("written_by", ColumnType::Text),
            Column::new("channel", ColumnType::Int),
        ],
        primary_key: Some(0),
    });
    s.foreign_keys.push(ForeignKey {
        from: ColumnId { table: 1, column: 3 },
        to: ColumnId { table: 0, column: 0 },
    });
    let mut db = engine::Database::empty(s);
    let t = |x: &str| engine::Value::Text(x.into());
    let i = engine::Value::Int;
    for row in [
        vec![i(1), t("Sky Radio"), t("Italy")],
        vec![i(2), t("Rai 1"), t("Italy")],
        vec![i(3), t("CBBC"), t("UK")],
        vec![i(4), t("Nick"), t("USA")],
    ] {
        db.insert(0, row);
    }
    for row in [
        vec![i(1), t("The Ball"), t("Todd Casey"), i(1)],
        vec![i(2), t("The Kite"), t("Todd Casey"), i(3)],
        vec![i(3), t("The Rock"), t("Joseph Kuhr"), i(3)],
        vec![i(4), t("The Star"), t("Joseph Kuhr"), i(4)],
    ] {
        db.insert(1, row);
    }
    db
}

#[test]
fn except_and_not_in_disagree_on_this_data() {
    let db = tv_db();
    let gold = parse(GOLD).unwrap();
    let not_in = parse(NOT_IN).unwrap();
    // Semantically different here: Italy has a Casey-free channel (Rai 1).
    assert!(!eval::ex_match(&not_in, &gold, &db));
    assert!(!eval::em_match(&not_in, &gold, &db.schema));
}

#[test]
fn fig2_demonstration_matches_gold_at_structure_level_only() {
    // The paper's Fig. 2 invoice demonstration shares the composition:
    // SELECT _ FROM _ EXCEPT SELECT _ FROM _ JOIN _ ON _ = _ WHERE _ > _
    let fig2 = parse(
        "SELECT LastName FROM customer EXCEPT SELECT T1.LastName FROM customer AS T1 JOIN \
         invoice AS T2 ON T1.CustomerId = T2.CustomerId WHERE T2.total > 20",
    )
    .unwrap();
    let gold = parse(GOLD).unwrap();
    let gold_skel = Skeleton::from_query(&gold);
    let fig2_skel = Skeleton::from_query(&fig2);
    // `>` vs `=` separates them at Detail and Keywords; Fig. 7's <CMP> class merges
    // them at Structure level — exactly the generalization §IV-C1 designed for.
    assert_ne!(gold_skel.at_level(Level::Detail), fig2_skel.at_level(Level::Detail));
    assert_ne!(gold_skel.at_level(Level::Keywords), fig2_skel.at_level(Level::Keywords));
    assert_eq!(gold_skel.at_level(Level::Structure), fig2_skel.at_level(Level::Structure));
    assert_eq!(gold_skel.at_level(Level::Clause), fig2_skel.at_level(Level::Clause));
    assert_eq!(llm::LlmService::support_level(&gold_skel, &[&fig2_skel]), Some(Level::Structure));
}

#[test]
fn keyword_sets_cannot_distinguish_reordered_compositions() {
    // §IV-C1's DAIL-SQL critique: swapping the EXCEPT arms keeps the keyword *set*
    // identical while the composition differs.
    let swapped = parse(
        "SELECT T1.Country FROM tv_channel AS T1 JOIN cartoon AS T2 ON T1.id = T2.channel \
         WHERE T2.written_by = 'Todd Casey' EXCEPT SELECT Country FROM tv_channel",
    )
    .unwrap();
    let gold = parse(GOLD).unwrap();
    let set = |q: &Query| -> BTreeSet<sqlkit::SkelTok> {
        Skeleton::from_query(q).at_level(Level::Keywords).into_iter().collect()
    };
    assert_eq!(set(&gold), set(&swapped), "keyword sets collide");
    assert_ne!(
        Skeleton::from_query(&gold).at_level(Level::Keywords),
        Skeleton::from_query(&swapped).at_level(Level::Keywords),
        "sequences must not collide"
    );
    // And the two queries disagree on data, so the collision matters.
    let db = tv_db();
    assert!(!eval::ex_match(&swapped, &gold, &db));
}

#[test]
fn composition_support_raises_the_simulated_llms_odds() {
    let svc = llm::LlmService::new(CHATGPT);
    let gold = parse(GOLD).unwrap();
    let required = Skeleton::from_query(&gold);
    let fig2_skel = Skeleton::from_query(
        &parse(
            "SELECT LastName FROM customer EXCEPT SELECT T1.LastName FROM customer AS T1 JOIN \
             invoice AS T2 ON T1.CustomerId = T2.CustomerId WHERE T2.total > 20",
        )
        .unwrap(),
    );
    let (p_without, _) = svc.composition_probability(&required, &[], &gold, 0.0, false);
    let (p_with, level) = svc.composition_probability(&required, &[&fig2_skel], &gold, 0.0, false);
    assert_eq!(level, Some(Level::Structure));
    assert!(
        p_with > p_without + 0.10,
        "structure-level demonstration should raise the odds: {p_with:.2} vs {p_without:.2}"
    );
}

#[test]
fn adaption_repairs_the_din_sql_style_output() {
    // DIN-SQL's Fig. 1 output references T1.Country through a NOT IN over a join —
    // executable but semantically redundant. Here we check the weaker guarantee the
    // paper makes: adaption never breaks an executable query.
    let db = tv_db();
    let din = "SELECT Country FROM tv_channel WHERE country NOT IN (SELECT T1.Country FROM \
               tv_channel AS T1 JOIN cartoon AS T2 ON T1.id = T2.Channel WHERE T2.Written_by \
               = 'Todd Casey')";
    let mut rng = rand::SeedableRng::seed_from_u64(1);
    let fixed = purple::adapt_sql(din, &db, &mut rng);
    assert!(fixed.executable);
    assert!(fixed.fixes.is_empty(), "executable SQL must be untouched: {:?}", fixed.fixes);
    assert_eq!(fixed.sql, din);
}
