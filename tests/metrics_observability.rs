//! Observability-layer contract tests: aggregated pipeline metrics are
//! byte-identical between serial and parallel evaluation (virtual clock +
//! example-order fold), survive the hand-rolled JSON codec, and shared
//! registries absorb per-run snapshots without losing events.

use purple_repro::eval::{metrics_from_json, metrics_to_json};
use purple_repro::obs;
use purple_repro::prelude::*;

fn suite() -> Suite {
    let mut cfg = GenConfig::tiny(777);
    cfg.dev_examples = 60;
    generate_suite(&cfg)
}

#[test]
fn aggregated_metrics_json_is_byte_identical_across_job_counts() {
    let suite = suite();
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let serial = evaluate(&system, &suite.dev, None);
    let serial_json = metrics_to_json(&serial.metrics);
    for jobs in [1usize, 4] {
        let par = evaluate_par(&system, &suite.dev, None, jobs);
        assert_eq!(
            serial_json,
            metrics_to_json(&par.metrics),
            "metrics JSON diverged at jobs={jobs}"
        );
    }
    // The aggregate is real: one span per pipeline stage per example, token
    // totals live. The write path stays silent on a read-only evaluation.
    let n = suite.dev.examples.len() as u64;
    for stage in obs::Stage::REPORT {
        assert_eq!(serial.metrics.stage(stage).calls, n, "stage {}", stage.name());
    }
    assert_eq!(serial.metrics.stage(obs::Stage::WriteExec).calls, 0, "reads opened write spans");
    assert_eq!(serial.metrics.counter(obs::Counter::LlmCalls), n);
    assert!(serial.metrics.counter(obs::Counter::PromptTokens) > 0);
    assert!(serial.metrics.counter(obs::Counter::Samples) >= n);
}

#[test]
fn aggregated_metrics_round_trip_through_json() {
    let suite = suite();
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let report = evaluate(&system, &suite.dev, None);
    let json = metrics_to_json(&report.metrics);
    let back = metrics_from_json(&json).expect("serialized metrics must parse");
    assert_eq!(report.metrics, back);
    assert_eq!(json, metrics_to_json(&back), "re-serialization must be byte-identical");
}

#[test]
fn shared_registry_absorbs_all_events_under_parallel_evaluation() {
    let suite = suite();
    let shared = MetricsRegistry::shared(Clock::Virtual);
    let base = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let system = base
        .with_config(PurpleConfig::default_with(CHATGPT))
        .with_env(RunEnv::default().with_metrics(shared.clone()));
    let report = evaluate_par(&system, &suite.dev, None, 4);
    let absorbed = shared.snapshot();
    // Absorption order across workers is nondeterministic, but counters, span
    // histograms, and fixer stats are all commutative merges — only gauges
    // (last-set-wins) may differ from the example-order fold in the report.
    assert_eq!(absorbed.counters, report.metrics.counters);
    assert_eq!(absorbed.stages, report.metrics.stages);
    assert_eq!(absorbed.fixers, report.metrics.fixers);
    // Draining takes everything and resets atomically.
    let drained = shared.drain();
    assert_eq!(drained.counters, absorbed.counters);
    assert!(shared.snapshot().is_empty());
}

#[test]
fn wall_clock_metrics_record_real_time_but_same_event_counts() {
    let suite = suite();
    let base = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let virt = base.with_config(PurpleConfig::default_with(CHATGPT));
    let wall = base.with_config(PurpleConfig::default_with(CHATGPT)).with_clock(Clock::Wall);
    let ex = &suite.dev.examples[0];
    let db = suite.dev.db_of(ex);
    let v = virt.run(Job::new(0, ex, db));
    let w = wall.run(Job::new(0, ex, db));
    assert_eq!(v.translation.sql, w.translation.sql, "clock choice must not affect results");
    assert_eq!(w.metrics.clock, Clock::Wall);
    for stage in obs::Stage::ALL {
        assert_eq!(v.metrics.stage(stage).calls, w.metrics.stage(stage).calls);
    }
    assert_eq!(v.metrics.counters, w.metrics.counters);
}
