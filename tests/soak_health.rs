//! Soak and health contracts (DESIGN.md §16): a saturated queue sheds and
//! the `health` verb reports it as a non-Healthy verdict with nonzero
//! queue-depth high-watermarks, and the soak timeline's virtual columns are
//! byte-identical across worker counts and arrival seeds.

use bench_harness::serve::TelemetryConfig;
use bench_harness::serve::{serve_connection, synth_requests, ServeConfig, Server, SubmitError};
use bench_harness::soak::{run_soak, tick_to_json, virt_prefix, warmup_costs, SoakConfig};
use obs::{Counter, SloVerdict};
use purple_repro::prelude::*;
use std::io;
use std::sync::{mpsc, Arc};
use std::time::Duration;

struct Fixture {
    bench: Arc<spidergen::Benchmark>,
    purple: Arc<Purple>,
    metrics: Arc<MetricsRegistry>,
}

fn fixture(gen_seed: u64) -> Fixture {
    let mut cfg = GenConfig::tiny(gen_seed);
    cfg.dev_examples = 24;
    let suite = generate_suite(&cfg);
    let metrics = MetricsRegistry::shared(Clock::Virtual);
    let session = ExecSession::shared_with(SessionConfig::for_workers(8));
    let purple = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT))
        .with_env(RunEnv::default().with_session(session).with_metrics(metrics.clone()));
    Fixture { bench: Arc::new(suite.dev.clone()), purple: Arc::new(purple), metrics }
}

fn start(fx: &Fixture, cfg: ServeConfig) -> Server {
    Server::start(fx.purple.clone(), fx.bench.clone(), fx.metrics.clone(), cfg)
}

#[test]
fn saturated_queue_sheds_and_health_degrades() {
    let fx = fixture(3344);
    let server = start(
        &fx,
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            telemetry: TelemetryConfig { bucket_width: 1 << 12, ..TelemetryConfig::default() },
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let (tx, rx) = mpsc::channel();
    let mut admitted = 0u64;
    let mut shed = 0u64;
    // Burst 200 non-blocking submissions against a capacity-1 queue drained
    // by one worker: the vast majority must hit a full queue and shed.
    for req in synth_requests(&fx.bench, 200, 0) {
        match handle.try_submit(req, tx.clone()) {
            Ok(()) => admitted += 1,
            Err(SubmitError::QueueFull) => shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(shed > 0, "a burst of 200 against a capacity-1 queue must shed");
    assert!(admitted > 0, "an empty queue admits at least the first request");
    // Probe health while the shed burst is still inside the window: the
    // admission SLO (target 0, tight budget) must be burning.
    let h = handle.health();
    assert_eq!(h.clock, "virtual");
    assert_eq!(h.shed, shed);
    assert!(h.queue_depth_hwm >= 1, "hwm gauge saw the queue fill");
    assert_ne!(h.verdict, SloVerdict::Healthy, "overload must not read as healthy");
    let admission = h.slos.iter().find(|s| s.name == "admission").expect("admission slo");
    assert!(admission.violations > 0);
    assert!(admission.burn_rate > 1.0);
    assert!(h.episodes >= 1, "the overload transition is an episode");
    // The verb body is one JSON object carrying the same verdict.
    let json = handle.health_json();
    assert!(json.starts_with("{\"clock\":\"virtual\",\"now\":"), "health json shape: {json}");
    assert!(json.contains("\"slos\":[{\"name\":\"translate_latency\""), "slo order: {json}");
    // Drain the admitted requests, then check the all-time shed accounting.
    drop(tx);
    let completions: Vec<_> = rx.iter().collect();
    assert_eq!(completions.len() as u64, admitted, "every admitted request completes");
    server.shutdown();
    let snap = fx.metrics.snapshot();
    assert_eq!(snap.counter(Counter::RequestsShed), shed, "shed counter matches refusals");
    let final_health = handle.health();
    assert_eq!(final_health.completed, admitted);
    assert_eq!(final_health.queue_depth, 0);
    assert_eq!(final_health.in_flight, 0);
}

#[test]
fn health_verb_answers_inline_over_stdio() {
    let fx = fixture(9182);
    let server = start(&fx, ServeConfig::default());
    let req = synth_requests(&fx.bench, 1, 0).remove(0);
    let input = format!("{}\n{{\"cmd\":\"health\"}}\n", eval::request_to_json(&req));
    let mut out = Vec::new();
    let stats =
        serve_connection(&server.handle(), io::Cursor::new(input), &mut out).expect("serves");
    server.shutdown();
    assert_eq!((stats.accepted, stats.rejected), (1, 0), "the verb counts toward neither");
    let text = String::from_utf8(out).expect("utf8 output");
    let health_line =
        text.lines().find(|l| l.starts_with("{\"health\":{")).expect("health verb answered inline");
    assert!(health_line.contains("\"slos\":["), "slo array present: {health_line}");
    assert!(health_line.contains("\"verdict\":"), "verdict present: {health_line}");
}

/// One full soak against a fresh fixture: prime the cost table sequentially,
/// run the open-loop driver, return the cost table and the timeline lines.
fn soak_once(gen_seed: u64, workers: usize, arrival_seed: u64) -> (Vec<u64>, Vec<String>) {
    let fx = fixture(gen_seed);
    let costs = warmup_costs(&fx.purple, &fx.bench);
    let server = start(&fx, ServeConfig { workers, ..ServeConfig::default() });
    let cfg = SoakConfig {
        duration: Duration::from_millis(200),
        rate: 100.0,
        arrival_seed,
        tick: Duration::from_millis(40),
    };
    let outcome = run_soak(&server.handle(), &fx.bench, &costs, &cfg).expect("soak runs clean");
    server.shutdown();
    assert_eq!(outcome.ticks.len(), 5, "200ms at 40ms ticks");
    assert!(outcome.completed > 0, "some offered requests complete");
    assert_eq!(
        outcome.completed + outcome.shed,
        outcome.offered,
        "every offered request is admitted or shed"
    );
    (costs, outcome.ticks.iter().map(tick_to_json).collect())
}

#[test]
fn soak_virt_columns_are_byte_identical_across_workers_and_seeds() {
    let (ref_costs, ref_lines) = soak_once(777, 1, 11);
    let ref_virt: Vec<String> = ref_lines.iter().map(|l| virt_prefix(l).to_string()).collect();
    assert!(ref_virt[0].starts_with("{\"tick\":0,\"id_lo\":0,\"id_hi\":4,"), "{}", ref_virt[0]);
    assert!(ref_virt[0].contains("\"virt_p50\":"), "{}", ref_virt[0]);
    for (workers, arrival_seed) in [(1, 99), (4, 11), (4, 99), (8, 11), (8, 99)] {
        let (costs, lines) = soak_once(777, workers, arrival_seed);
        assert_eq!(ref_costs, costs, "cost table diverged at workers={workers}");
        let virt: Vec<String> = lines.iter().map(|l| virt_prefix(l).to_string()).collect();
        assert_eq!(
            ref_virt, virt,
            "virt timeline columns diverged at workers={workers} seed={arrival_seed}"
        );
    }
}
