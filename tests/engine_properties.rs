//! Property-based tests of the execution engine's SQL semantics, driven by the
//! benchmark generator's (query, database) pairs — every invariant here must hold
//! for arbitrary generated workloads.

use proptest::prelude::*;
use purple_repro::prelude::*;
use sqlkit::ast::{Condition, OrderDir};

fn fixtures() -> &'static Suite {
    static SUITE: std::sync::OnceLock<Suite> = std::sync::OnceLock::new();
    SUITE.get_or_init(|| generate_suite(&GenConfig::tiny(777)))
}

fn pick(suite: &Suite, ix: usize) -> (&engine::Database, &Query) {
    let ex = &suite.dev.examples[ix % suite.dev.examples.len()];
    (suite.dev.db_of(ex), &ex.query)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn where_filter_never_grows_the_result(ix in 0usize..10_000) {
        let suite = fixtures();
        let (db, q) = pick(suite, ix);
        if q.compound.is_some() || q.core.where_clause.is_none() || q.core.limit.is_some() {
            return Ok(());
        }
        let filtered = execute(db, q).expect("gold executes");
        let mut unfiltered = q.clone();
        unfiltered.core.where_clause = None;
        if let Ok(all) = execute(db, &unfiltered) {
            prop_assert!(
                filtered.rows.len() <= all.rows.len(),
                "WHERE grew rows: {} > {}",
                filtered.rows.len(),
                all.rows.len()
            );
        }
    }

    #[test]
    fn distinct_never_grows_the_result(ix in 0usize..10_000) {
        let suite = fixtures();
        let (db, q) = pick(suite, ix);
        if q.compound.is_some() || q.core.limit.is_some() {
            return Ok(());
        }
        let base = execute(db, q).expect("gold executes");
        let mut d = q.clone();
        d.core.distinct = true;
        let dd = execute(db, &d).expect("distinct executes");
        prop_assert!(dd.rows.len() <= base.rows.len());
        // Idempotence: DISTINCT twice equals once.
        let ddd = execute(db, &d).expect("distinct re-executes");
        prop_assert!(dd.same_result(&ddd, false));
    }

    #[test]
    fn limit_caps_row_count(ix in 0usize..10_000, n in 0u64..5) {
        let suite = fixtures();
        let (db, q) = pick(suite, ix);
        if q.compound.is_some() {
            return Ok(());
        }
        let mut lq = q.clone();
        lq.core.limit = Some(n);
        let rs = execute(db, &lq).expect("limited query executes");
        prop_assert!(rs.rows.len() as u64 <= n);
    }

    #[test]
    fn set_operation_cardinalities(ix in 0usize..10_000) {
        let suite = fixtures();
        let (db, q) = pick(suite, ix);
        if q.compound.is_some() || !q.core.order_by.is_empty() || q.core.limit.is_some() {
            return Ok(());
        }
        let base = execute(db, q).expect("executes");
        for (op, check) in [
            (sqlkit::SetOp::Union, "union"),
            (sqlkit::SetOp::Intersect, "intersect"),
            (sqlkit::SetOp::Except, "except"),
        ] {
            let compound = Query {
                core: q.core.clone(),
                compound: Some((op, Box::new(q.clone()))),
            };
            let rs = execute(db, &compound).expect("set op executes");
            match check {
                // q OP q over identical operands:
                "union" | "intersect" => {
                    // both equal the de-duplicated base
                    prop_assert!(rs.rows.len() <= base.rows.len());
                    let mut dq = q.clone();
                    dq.core.distinct = true;
                    let dedup = execute(db, &dq).expect("distinct executes");
                    prop_assert!(
                        rs.same_result(&dedup, false),
                        "self-{check} must equal DISTINCT base"
                    );
                }
                _ => prop_assert!(rs.rows.is_empty(), "q EXCEPT q must be empty"),
            }
        }
    }

    #[test]
    fn order_by_direction_reversal_reverses_extremes(ix in 0usize..10_000) {
        let suite = fixtures();
        let (db, q) = pick(suite, ix);
        if q.compound.is_some() || q.core.order_by.len() != 1 || q.core.limit.is_some() {
            return Ok(());
        }
        let asc_rs = {
            let mut a = q.clone();
            a.core.order_by[0].dir = OrderDir::Asc;
            execute(db, &a).expect("asc executes")
        };
        let desc_rs = {
            let mut d = q.clone();
            d.core.order_by[0].dir = OrderDir::Desc;
            execute(db, &d).expect("desc executes")
        };
        // Same multiset, reversed-or-equal first/last rows under a total ordering.
        prop_assert!(asc_rs.same_result(&desc_rs, false));
    }

    #[test]
    fn conjunction_is_commutative(ix in 0usize..10_000) {
        let suite = fixtures();
        let (db, q) = pick(suite, ix);
        let Some(Condition::And(l, r)) = q.core.where_clause.clone() else { return Ok(()) };
        let mut swapped = q.clone();
        swapped.core.where_clause = Some(Condition::And(r, l));
        let a = execute(db, q).expect("executes");
        let b = execute(db, &swapped).expect("swapped executes");
        prop_assert!(a.same_result(&b, engine::order_matters(q)));
    }

    #[test]
    fn execution_is_deterministic(ix in 0usize..10_000) {
        let suite = fixtures();
        let (db, q) = pick(suite, ix);
        let a = execute(db, q).expect("executes");
        let b = execute(db, q).expect("re-executes");
        prop_assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn em_is_reflexive_and_ex_matches_self(ix in 0usize..10_000) {
        let suite = fixtures();
        let ex = &suite.dev.examples[ix % suite.dev.examples.len()];
        let db = suite.dev.db_of(ex);
        prop_assert!(eval::em_match(&ex.query, &ex.query, &db.schema));
        prop_assert!(eval::ex_match(&ex.query, &ex.query, db));
    }
}
