//! Parallel-evaluation contract tests: every translator is `Send + Sync`, and
//! `evaluate_par` is bit-identical to serial `evaluate` for any job count
//! (seeds derive from the example index, not from call order). Also round-trips
//! an `EvalReport` through the hand-rolled JSON codec.

use purple_repro::eval::{report_from_json, report_to_json, EvalReport, OracleTranslator};
use purple_repro::prelude::*;

fn suite() -> Suite {
    let mut cfg = GenConfig::tiny(777);
    cfg.dev_examples = 60;
    generate_suite(&cfg)
}

#[test]
fn translators_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Purple>();
    assert_send_sync::<LlmBaseline>();
    assert_send_sync::<PlmTranslator>();
    assert_send_sync::<OracleTranslator>();
    // The harness accepts shared trait objects across threads.
    assert_send_sync::<Box<dyn Translator + Send + Sync>>();
}

#[test]
fn parallel_evaluation_matches_serial_for_purple() {
    let suite = suite();
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let serial = evaluate(&system, &suite.dev, None);
    for jobs in [1usize, 4] {
        let par = evaluate_par(&system, &suite.dev, None, jobs);
        assert_eq!(serial, par, "jobs={jobs} diverged from serial for PURPLE");
    }
}

#[test]
fn parallel_evaluation_matches_serial_for_baseline() {
    let suite = suite();
    let purple_sys = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let models = SharedModels::from_purple(&purple_sys);
    let baseline = LlmBaseline::new(Strategy::DailSql, CHATGPT, models);
    let serial = evaluate(&baseline, &suite.dev, None);
    for jobs in [1usize, 4] {
        let par = evaluate_par(&baseline, &suite.dev, None, jobs);
        assert_eq!(serial, par, "jobs={jobs} diverged from serial for DAIL-SQL");
    }
}

#[test]
fn parallel_evaluation_matches_serial_with_test_suites() {
    let suite = suite();
    let ts = build_suites(&suite.dev, SuiteConfig::default(), 11);
    let serial = evaluate(&OracleTranslator, &suite.dev, Some(&ts));
    let par = evaluate_par(&OracleTranslator, &suite.dev, Some(&ts), 4);
    assert!(serial.has_ts);
    assert_eq!(serial, par, "TS-scored evaluation diverged under 4 jobs");
}

#[test]
fn eval_report_round_trips_through_json() {
    let suite = suite();
    let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
    let ts = build_suites(&suite.dev, SuiteConfig::default(), 11);
    let report = evaluate(&system, &suite.dev, Some(&ts));
    let json = report_to_json(&report);
    let back: EvalReport = report_from_json(&json).expect("serialized report must parse");
    assert_eq!(report, back);
    // Token averages survive the float round trip exactly.
    assert_eq!(report.avg_prompt_tokens, back.avg_prompt_tokens);
    assert_eq!(report.avg_output_tokens, back.avg_output_tokens);
}
