//! # purple-repro
//!
//! A from-scratch Rust reproduction of **PURPLE: Making a Large Language Model a
//! Better SQL Writer** (Ren et al., ICDE 2024) — the retrieval-augmented prompting
//! pipeline for NL2SQL translation — together with every substrate its evaluation
//! needs: a SQL toolkit, an in-memory SQLite-like engine, a Spider-like benchmark
//! generator, trained PLM stand-ins, a simulated LLM service, all baselines, and
//! the EM/EX/TS metric suite.
//!
//! This facade crate re-exports the workspace's public APIs and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! ## The five-minute tour
//!
//! ```
//! use purple_repro::prelude::*;
//!
//! // 1. Generate a benchmark suite (Spider analog).
//! let suite = generate_suite(&GenConfig::tiny(42));
//!
//! // 2. Train PURPLE on the training split (classifier + skeleton predictor +
//! //    demonstration pool + four-level automata).
//! let system = Purple::new(&suite.train, PurpleConfig::default_with(CHATGPT));
//!
//! // 3. Translate a validation question. `run` takes a Job and returns a
//! //    RunOutcome: the translation plus per-stage metrics (and a trace on
//! //    request via `Job::with_trace`).
//! let ex = &suite.dev.examples[0];
//! let outcome = system.run(Job::new(0, ex, suite.dev.db_of(ex)));
//! assert!(!outcome.translation.sql.is_empty());
//!
//! // 4. Score the whole split — serially, or across worker threads with
//! //    bit-identical results (seeds derive from the example index).
//! let report = evaluate(&system, &suite.dev, None);
//! assert_eq!(report, evaluate_par(&system, &suite.dev, None, 4));
//! assert!(report.overall.em_pct() > 0.0);
//! ```
//!
//! See DESIGN.md for the architecture and the paper-substitution table, and
//! EXPERIMENTS.md for paper-vs-measured numbers of every table and figure.

pub use baselines;
pub use engine;
pub use eval;
pub use llm;
pub use nlmodel;
pub use obs;
pub use purple;
pub use spidergen;
pub use sqlkit;

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use baselines::{LlmBaseline, PlmTranslator, SharedModels, Strategy, ALL_PLM};
    pub use engine::{
        execute, execute_vectorized, prepare, run, Database, EngineMode, ExecSession, Plan,
        ResultSet, SessionConfig, Value,
    };
    pub use eval::{
        attribute, build_suites, evaluate, evaluate_par, evaluate_par_with_session,
        evaluate_with_par, evaluate_with_session, AttributionReport, Blame, Job, JobSpec, Request,
        Response, RunEnv, SuiteConfig, TraceSummary, Translation, Translator, Verdict,
    };
    pub use llm::{LlmService, Prompt, CHATGPT, GPT4};
    pub use obs::{Clock, EventSink, MetricsRegistry, StageMetrics};
    pub use purple::{Purple, PurpleConfig, RunOutcome};
    pub use spidergen::{generate_suite, GenConfig, Suite};
    pub use sqlkit::{parse, Hardness, Level, Query, Schema, Skeleton};
}
